"""The concurrent serving layer: DeepSea as a long-lived query service.

The batch harness (:mod:`repro.bench.harness`) runs one query at a time
to completion; a production DeepSea is a *service* — many clients submit
interleaved queries while the pool is being progressively repartitioned
underneath them.  This package puts the classic serving shape in front of
the existing engine:

* :mod:`repro.serve.queue` — a **bounded admission queue** (queue-based
  load leveling).  Overload is answered with a typed
  :class:`~repro.errors.Overloaded` rejection at submit time, never with
  an unbounded queue or a blocking put.
* :mod:`repro.serve.snapshot` — **epoch-pinned snapshot leases** over the
  view pool.  A reader plans and executes against the exact pool
  configuration of one epoch; fragments evicted mid-read are served from
  retained payloads, so readers never block on the writer and never see a
  half-applied repartitioning.
* :mod:`repro.serve.writer` — the **single writer**: one thread applying
  repartitioning steps as journaled transactions (the PR-3 WAL), feeding
  DeepSea's adaptive loop with the admitted query stream.
* :mod:`repro.serve.service` — :class:`~repro.serve.service.QueryService`
  wiring it together: N reader threads, per-query deadlines
  (:class:`~repro.errors.DeadlineExceeded`), bounded retry-with-backoff on
  worker crash, and a graceful degradation ladder whose last rung is
  direct base-table execution — a query can be *shed* or *timed out*, but
  an answered query is always answered correctly.
* :mod:`repro.serve.driver` — the open-loop load driver behind
  ``python -m repro serve-bench``: queries/sec and p50/p95/p99 tail
  latency under steady, burst, and chaos load, with every answer's digest
  checked against the serial fault-free run.

The serving invariant extends DESIGN.md §9: **admission control, faults,
and concurrency change latency and cost — never answers.**
"""

from repro.serve.queue import AdmissionQueue
from repro.serve.service import QueryOutcome, QueryService
from repro.serve.snapshot import EpochLease, SnapshotManager
from repro.serve.writer import IngestBatch, PoolWriter

__all__ = [
    "AdmissionQueue",
    "EpochLease",
    "IngestBatch",
    "PoolWriter",
    "QueryOutcome",
    "QueryService",
    "SnapshotManager",
]
