"""The single writer: adaptation applied as journaled transactions.

Exactly one thread mutates the pool.  It consumes the admitted query
stream (readers answer; the writer *learns*) and runs each query through
the full DeepSea loop — matching, statistics, selection, materialization,
refinement — under the service's plan lock, with ``always_journal`` set
so every repartitioning step is an atomic begin/commit transaction even
without chaos attached.  Snapshot readers rely on that atomicity: between
two plan-lock acquisitions the pool is always a committed configuration,
and a crashed step's rollback restores the exact pre-step bytes and
cover versions the readers' leases were promised.

The feed is itself a bounded :class:`~repro.serve.queue.AdmissionQueue`:
under overload, adaptation work is shed (counted, never blocking the
admission path).  A service that is too busy to learn keeps answering —
the pool just stops improving until pressure drops, which is the
degradation the serving layer promises.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from repro.errors import Overloaded, ReproError
from repro.serve.queue import AdmissionQueue

if TYPE_CHECKING:
    from repro.core.deepsea import DeepSea
    from repro.query.algebra import Plan

# How long a blocked take() waits before re-checking for shutdown.
_POLL_S = 0.05


@dataclass(frozen=True)
class IngestBatch:
    """Feed sentinel: append ``rows`` to base table ``name``.

    Rides the same bounded feed as adaptation work — batches queue behind
    (and interleave with) learning steps, and the writer applies each one
    atomically under the plan lock via ``DeepSea.ingest`` (journaled, so
    snapshot readers between two lock acquisitions always see a committed
    catalog + pool pair).
    """

    name: str
    rows: Any


class PoolWriter:
    """One thread applying DeepSea's adaptive steps as transactions."""

    def __init__(self, system: "DeepSea", plan_lock: threading.RLock, *, depth: int = 64):
        self.system = system
        self.plan_lock = plan_lock
        system.always_journal = True
        self._feed: AdmissionQueue = AdmissionQueue(depth)
        self._thread = threading.Thread(
            target=self._loop, name="serve-writer", daemon=True
        )
        self._draining = threading.Event()
        self.steps = 0
        self.batches = 0
        self.errors: list[str] = []

    # ------------------------------------------------------------------
    def start(self) -> None:
        self._thread.start()

    def feed(self, plan: "Plan") -> bool:
        """Offer one admitted query to the adaptation loop.

        Returns ``False`` when the feed is saturated and the query's
        evidence is dropped — load shedding for the learning path.
        """
        try:
            self._feed.offer(plan)
            return True
        except Overloaded:
            return False

    def feed_batch(self, name: str, rows) -> bool:
        """Offer one ingest micro-batch to the writer.

        Same shedding contract as :meth:`feed` — ``False`` means the feed
        is saturated and the batch was dropped (the caller owns durability
        of unaccepted batches; the serving layer promises only that an
        *accepted* batch is applied atomically or not at all).
        """
        try:
            self._feed.offer(IngestBatch(name, rows))
            return True
        except Overloaded:
            return False

    def stop(self, *, drain: bool = True, timeout: "float | None" = 30.0) -> None:
        """Stop the writer, by default after finishing the queued feed."""
        if drain:
            self._draining.set()
        self._feed.close()
        if self._thread.is_alive():
            self._thread.join(timeout)

    @property
    def dropped(self) -> int:
        return self._feed.shed

    # ------------------------------------------------------------------
    def _loop(self) -> None:
        while True:
            plan = self._feed.take(_POLL_S)
            if plan is None:
                if self._feed.closed:
                    return
                continue
            if self._feed.closed and not self._draining.is_set():
                continue  # fast shutdown: discard without executing
            with self.plan_lock:
                try:
                    if isinstance(plan, IngestBatch):
                        self.system.ingest(plan.name, plan.rows)
                        self.batches += 1
                    else:
                        self.system.execute(plan)
                        self.steps += 1
                except ReproError as exc:
                    # The writer must outlive any single bad step: the
                    # hardened _crash_safe has already rolled the journal
                    # back, so the pool is a committed configuration and
                    # the next query can proceed.
                    self.errors.append(f"{type(exc).__name__}: {exc}")
