"""The query service: admission, epoch-pinned readers, degradation ladder.

:class:`QueryService` turns one :class:`~repro.core.deepsea.DeepSea`
instance into a long-lived concurrent service:

* **Admission.**  ``submit`` either enqueues a ticket or raises a typed
  :class:`~repro.errors.Overloaded` — clients are never blocked and never
  hung.  Admitted queries also feed the single writer's adaptation loop
  (where *that* is saturated, learning is shed, not serving).
* **Readers.**  N threads pull tickets.  Each attempt plans under the
  shared plan lock (matching memos and the writer's mutations are
  serialized there), pins an epoch lease, and executes *outside* the lock
  against the leased snapshot — readers never block on the writer for the
  expensive part, and never observe a half-applied repartitioning.
* **Deadlines.**  A ticket whose deadline passes while queued or between
  retries resolves as :class:`~repro.errors.DeadlineExceeded` — typed,
  counted, never a hang.
* **Degradation ladder.**  A failed attempt (injected worker crash, a
  lost block that recovery could not heal, any engine fault) is retried
  with backoff against a *fresh* lease — re-planned at the current epoch,
  so a query that raced a repartitioning of its best view simply falls
  back to whatever cover now exists.  When retries are exhausted the
  final rung executes the pushed-down plan directly against the base
  tables, which cannot lose a race with the pool.  Views are semantically
  transparent, so every rung returns byte-identical rows: the ladder
  trades cost for robustness, never answers.

The per-query outcome is a :class:`QueryOutcome` with machine-readable
status and error kinds, so the load driver can audit the accounting
invariant: ``answered + shed + timed_out + failed == offered``.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.engine.cost import CostLedger
from repro.engine.executor import ExecutionContext, Executor
from repro.errors import DeadlineExceeded, ReproError, WorkerCrashError
from repro.faults.injector import FaultInjector
from repro.parallel import shared_cache
from repro.query.optimizer import push_down
from repro.serve.queue import AdmissionQueue
from repro.serve.snapshot import SnapshotManager
from repro.serve.writer import PoolWriter

if TYPE_CHECKING:
    from repro.core.deepsea import DeepSea
    from repro.engine.table import Table
    from repro.query.algebra import Plan

# How long a blocked reader waits before re-checking for shutdown.
_POLL_S = 0.05


class LockedInjector(FaultInjector):
    """A :class:`FaultInjector` safe to share across service threads.

    numpy's ``Generator`` is not thread-safe, and the injector's event
    log is an append-heavy list — so every draw site takes one lock.
    Draw *order* across threads is scheduling-dependent, which is fine:
    the serving invariant is checked on answers (digests against the
    serial fault-free run), not on event-log byte-equality.
    """

    def __init__(self, schedule) -> None:
        super().__init__(schedule)
        self._draw_lock = threading.Lock()

    def map_task_faults(self, tasks):
        with self._draw_lock:
            return super().map_task_faults(tasks)

    def block_read_faults(self, path, size_bytes, ledger):
        with self._draw_lock:
            return super().block_read_faults(path, size_bytes, ledger)

    def lose_fragment(self, n_candidates):
        with self._draw_lock:
            return super().lose_fragment(n_candidates)

    def controller_crash(self, site):
        with self._draw_lock:
            return super().controller_crash(site)

    def worker_crash(self, site):
        with self._draw_lock:
            return super().worker_crash(site)

    def worker_kill_plan(self, n_tasks):
        with self._draw_lock:
            return super().worker_kill_plan(n_tasks)

    def record_recovery(self, site, detail):
        with self._draw_lock:
            return super().record_recovery(site, detail)


@dataclass
class QueryOutcome:
    """What happened to one admitted query."""

    index: int
    status: str  # "answered" | "timed_out" | "failed"
    latency_s: float
    sim_cost_s: float = 0.0
    epoch: "int | None" = None
    retries: int = 0
    # "none" (planned path, first try), "replan" (answered after at least
    # one fresh-lease retry), "direct" (final base-table rung).
    degraded: str = "none"
    error_kind: "str | None" = None
    used_view: bool = False
    table: "Table | None" = field(default=None, repr=False)

    def to_dict(self) -> dict:
        return {
            "index": self.index,
            "status": self.status,
            "latency_s": self.latency_s,
            "sim_cost_s": self.sim_cost_s,
            "epoch": self.epoch,
            "retries": self.retries,
            "degraded": self.degraded,
            "error_kind": self.error_kind,
            "used_view": self.used_view,
        }


class ServeTicket:
    """A client's handle on one admitted query."""

    def __init__(self, index: int, plan: "Plan", deadline_s: "float | None"):
        self.index = index
        self.plan = plan
        self.submitted = time.monotonic()
        self.deadline_s = deadline_s
        self.deadline = None if deadline_s is None else self.submitted + deadline_s
        self._done = threading.Event()
        self.outcome: "QueryOutcome | None" = None

    def result(self, timeout: "float | None" = None) -> "QueryOutcome | None":
        """Wait for the outcome; ``None`` only if ``timeout`` expires."""
        self._done.wait(timeout)
        return self.outcome


class QueryService:
    """A bounded-queue, N-reader, single-writer serving layer.

    Chaos is opted into via ``faults`` (a schedule name, JSON, or
    :class:`~repro.faults.schedule.FaultSchedule`): the service mints a
    :class:`LockedInjector` and attaches it to the system, so storage
    damage, controller crashes, and per-attempt reader deaths all draw
    from one thread-safe stream.  Attach chaos through this parameter —
    not ``system.attach_faults`` — when using more than one worker.

    ``shared_cache=True`` stands up an in-process shared result tier and
    routes reader threads through it *first* (``prefer_shared``): a hit
    is one lock-free dict read instead of a pass through the single
    process-local result-cache lock all readers otherwise contend on.
    Entries carry the cover versions they were built under, so a reader
    racing the writer's repartitioning sees a version mismatch — a plain
    miss — never a stale answer.
    """

    def __init__(
        self,
        system: "DeepSea",
        *,
        workers: int = 2,
        queue_depth: int = 32,
        deadline_s: "float | None" = None,
        retries: int = 2,
        backoff_s: float = 0.005,
        faults=None,
        adapt: bool = True,
        shared_cache: bool = False,
    ):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if retries < 0:
            raise ValueError("retries must be >= 0")
        self.system = system
        self.retries = retries
        self.backoff_s = backoff_s
        self.deadline_s = deadline_s
        self.plan_lock = threading.RLock()
        self.queue = AdmissionQueue(queue_depth)
        self.snapshots = SnapshotManager(system.pool)
        if faults is not None:
            from repro.faults.schedule import FaultSchedule

            system.attach_faults(LockedInjector(FaultSchedule.resolve(faults)))
        self._injector = system.faults
        self.writer = PoolWriter(system, self.plan_lock, depth=queue_depth * 4) if adapt else None
        self._readers = [
            threading.Thread(target=self._reader_loop, name=f"serve-reader-{i}", daemon=True)
            for i in range(workers)
        ]
        self._shared_cache = shared_cache
        self._shared_server: "shared_cache.SharedCacheServer | None" = None
        self._prior_client = None
        self._prior_server = None
        self._mlock = threading.Lock()
        self._seq = 0
        self.answered = 0
        self.timed_out = 0
        self.failed = 0
        self.retry_count = 0
        self.degraded_direct = 0
        self.via_view = 0
        self._started = False

    # ------------------------------------------------------------------
    # Client surface
    # ------------------------------------------------------------------
    def start(self) -> "QueryService":
        if not self._started:
            self._started = True
            if self._shared_cache:
                self._install_shared_tier()
            if self.writer is not None:
                self.writer.start()
            for thread in self._readers:
                thread.start()
        return self

    def _install_shared_tier(self) -> None:
        """Stand up the in-process shared tier for this service's threads.

        The arena is skipped — everything lives in one address space, so
        payload bytes are served straight from the server's dict.  The
        system's pool/catalog get in-process identity tokens when the
        caller didn't stamp content-stable ones; that's safe here because
        the tier never outlives this process.
        """
        pool = getattr(self.system, "pool", None)
        if pool is not None and getattr(pool, "shared_ident", None) is None:
            pool.shared_ident = ("serve-pool", id(self), pool.uid)
        catalog = self.system.catalog
        if getattr(catalog, "shared_ident", None) is None:
            catalog.shared_ident = ("serve-catalog", id(self), catalog.uid)
        self._shared_server = shared_cache.SharedCacheServer(use_arena=False)
        self._prior_server = shared_cache.install_server(self._shared_server)
        self._prior_client = shared_cache.install_client(
            shared_cache.InProcessClient(self._shared_server, prefer_shared=True)
        )

    def submit(self, plan: "Plan", *, deadline_s: "float | None" = None) -> ServeTicket:
        """Admit one query or raise :class:`~repro.errors.Overloaded`."""
        with self._mlock:
            self._seq += 1
            index = self._seq
        ticket = ServeTicket(
            index, plan, self.deadline_s if deadline_s is None else deadline_s
        )
        self.queue.offer(ticket)  # Overloaded propagates; ticket never queued
        if self.writer is not None:
            self.writer.feed(plan)
        return ticket

    def feed_batch(self, name: str, rows) -> bool:
        """Offer an ingest micro-batch; the writer thread applies it as a
        journaled transaction under the plan lock, between queries — no
        reader ever observes a half-applied append (snapshot leases pin
        the pre-batch configuration; post-batch reads see the exact
        post-maintenance fragments).  Returns ``False`` when shed (no
        writer, or feed saturated)."""
        if self.writer is None:
            return False
        return self.writer.feed_batch(name, rows)

    def stop(self, *, drain_writer: bool = True, timeout: float = 60.0) -> None:
        """Close admission, finish queued tickets, stop readers + writer."""
        self.queue.close()
        for thread in self._readers:
            if thread.is_alive():
                thread.join(timeout)
        if self.writer is not None:
            self.writer.stop(drain=drain_writer, timeout=timeout)
        self.snapshots.detach()
        if self._shared_server is not None:
            shared_cache.install_client(self._prior_client)
            shared_cache.install_server(self._prior_server)
            self._shared_server.close()

    def __enter__(self) -> "QueryService":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # ------------------------------------------------------------------
    def metrics(self) -> dict:
        """Counters for reporting and the accounting-invariant audit."""
        with self._mlock:
            counts = {
                "answered": self.answered,
                "timed_out": self.timed_out,
                "failed": self.failed,
                "retries": self.retry_count,
                "degraded_direct": self.degraded_direct,
                "via_view": self.via_view,
            }
        out = {
            "offered": self.queue.offered,
            "shed": self.queue.shed,
            **counts,
            "pool_epoch": self.system.pool.epoch,
            "snapshots": {
                "retained_total": self.snapshots.retained_total,
                "served_from_retained": self.snapshots.served_from_retained,
                "retained_now": self.snapshots.retained_count,
            },
            "fault_events": self._injector.fired if self._injector is not None else 0,
        }
        if self.writer is not None:
            out["writer"] = {
                "steps": self.writer.steps,
                "batches": self.writer.batches,
                "dropped": self.writer.dropped,
                "errors": len(self.writer.errors),
            }
        if self._shared_server is not None:
            out["shared_cache"] = self._shared_server.stats()
        out["accounted"] = (
            out["answered"] + out["shed"] + out["timed_out"] + out["failed"]
        )
        out["accounting_ok"] = out["accounted"] == out["offered"]
        return out

    # ------------------------------------------------------------------
    # Reader side
    # ------------------------------------------------------------------
    def _reader_loop(self) -> None:
        while True:
            ticket = self.queue.take(_POLL_S)
            if ticket is None:
                if self.queue.closed:
                    return
                continue
            self._serve(ticket)

    def _serve(self, ticket: ServeTicket) -> None:
        retries = 0
        last_kind: "str | None" = None
        while True:
            now = time.monotonic()
            if ticket.deadline is not None and now > ticket.deadline:
                exc = DeadlineExceeded(ticket.deadline_s, now - ticket.submitted)
                self._resolve(
                    ticket, "timed_out", retries=retries, error_kind=exc.kind
                )
                return
            try:
                table, sim_cost, epoch, used_view = self._attempt(ticket.plan)
            except ReproError as exc:
                last_kind = exc.kind
                if retries < self.retries:
                    retries += 1
                    with self._mlock:
                        self.retry_count += 1
                    time.sleep(self.backoff_s * retries)
                    continue
                break  # retry budget spent: drop to the base-table rung
            self._resolve(
                ticket,
                "answered",
                table=table,
                sim_cost_s=sim_cost,
                epoch=epoch,
                retries=retries,
                degraded="replan" if retries else "none",
                used_view=used_view,
            )
            return
        try:
            table, sim_cost = self._direct(ticket.plan)
        except Exception as exc:  # a real bug, not adversity — surface it
            self._resolve(
                ticket,
                "failed",
                retries=retries,
                error_kind=getattr(exc, "kind", type(exc).__name__),
            )
            return
        self._resolve(
            ticket,
            "answered",
            table=table,
            sim_cost_s=sim_cost,
            retries=retries,
            degraded="direct",
            error_kind=last_kind,
        )

    def _attempt(self, plan: "Plan"):
        """One planned attempt: plan under the lock, execute epoch-pinned."""
        with self.plan_lock:
            chosen = self._plan(plan)
            lease = self.snapshots.acquire()
        try:
            if self._injector is not None and self._injector.worker_crash("serve.reader"):
                raise WorkerCrashError("injected reader death mid-query")
            ledger = CostLedger(self.system.cluster)
            if self._injector is not None:
                ledger.faults = self._injector
            to_run = (
                chosen.plan
                if chosen is not None
                else push_down(plan, self.system.schemas)
            )
            executor = Executor(
                ExecutionContext(self.system.catalog, lease.pool_view(), self.system.cluster)
            )
            result = executor.execute(to_run, ledger)
            return result.table, ledger.total_seconds, lease.epoch, chosen is not None
        finally:
            lease.release()

    def _plan(self, plan: "Plan"):
        """Best rewriting against the live pool, or ``None`` for direct.

        Planning trouble is never fatal — it degrades to direct execution,
        which the matching layer already treats as the universal fallback.
        """
        system = self.system
        try:
            matches = system.rewriter.find_matches(plan)
            rewritings = system.rewriter.build_rewritings(plan, matches)
            if not rewritings:
                return None
            direct_est = system.rewriter.estimate_plan_cost(
                push_down(plan, system.schemas)
            ).cost_s
            best = min(rewritings, key=lambda r: r.est_cost_s)
            return best if best.est_cost_s < direct_est else None
        except ReproError:
            return None

    def _direct(self, plan: "Plan"):
        """The ladder's floor: base tables only, no pool, no crash draws."""
        ledger = CostLedger(self.system.cluster)
        executor = Executor(
            ExecutionContext(self.system.catalog, None, self.system.cluster)
        )
        result = executor.execute(push_down(plan, self.system.schemas), ledger)
        return result.table, ledger.total_seconds

    def _resolve(self, ticket: ServeTicket, status: str, **kwargs) -> None:
        outcome = QueryOutcome(
            index=ticket.index,
            status=status,
            latency_s=time.monotonic() - ticket.submitted,
            **kwargs,
        )
        with self._mlock:
            if status == "answered":
                self.answered += 1
                if outcome.degraded == "direct":
                    self.degraded_direct += 1
                if outcome.used_view:
                    self.via_view += 1
            elif status == "timed_out":
                self.timed_out += 1
            else:
                self.failed += 1
        ticket.outcome = outcome
        ticket._done.set()
