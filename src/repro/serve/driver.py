"""Open-loop load driver for the serving layer (``python -m repro serve-bench``).

Open-loop means arrivals are *independent of completions*: the driver
submits on a seeded arrival schedule whether or not the service has kept
up, which is the only load shape that actually exercises admission
control (a closed loop self-throttles and can never overflow the queue).
Three phases, each against a fresh DeepSea instance:

* ``steady`` — exponential interarrivals at the target rate.
* ``burst``  — back-to-back bursts several times the queue depth with
  idle gaps between them; guarantees the shed path fires.
* ``chaos``  — steady arrivals with a fault schedule attached *and* the
  writer repartitioning throughout: worker crashes, replica damage,
  fragment loss, controller crashes mid-transaction.

Every answered query's digest is checked against a serial, fault-free,
direct execution of the same plan — the serving invariant in executable
form.  The driver also audits the accounting invariant
(``answered + shed + timed_out + failed == offered``) and reports
queries/sec plus p50/p95/p99 tail latency and a log-bucketed latency
histogram per phase.
"""

from __future__ import annotations

import hashlib
import os
import platform
import time
from typing import TYPE_CHECKING

import numpy as np

from repro.errors import Overloaded
from repro.serve.service import QueryService

if TYPE_CHECKING:
    from repro.engine.table import Table

PHASES = ("steady", "burst", "chaos")

# Latency histogram bucket edges, in milliseconds (log2-spaced).
_BUCKET_EDGES_MS = [2.0**k for k in range(-1, 14)]


def answer_digest(table: "Table") -> str:
    """Canonical digest of an answer: order-free, byte-stable row repr."""
    return hashlib.sha256(repr(table.sorted_rows()).encode()).hexdigest()[:16]


def _percentiles(latencies_s: list[float]) -> dict:
    if not latencies_s:
        return {"p50_ms": 0.0, "p95_ms": 0.0, "p99_ms": 0.0, "max_ms": 0.0}
    arr = np.asarray(latencies_s) * 1e3
    return {
        "p50_ms": round(float(np.percentile(arr, 50)), 3),
        "p95_ms": round(float(np.percentile(arr, 95)), 3),
        "p99_ms": round(float(np.percentile(arr, 99)), 3),
        "max_ms": round(float(arr.max()), 3),
    }


def _histogram(latencies_s: list[float]) -> dict:
    """Log-bucketed latency histogram: ``{"<=1ms": n, ..., ">8192ms": n}``."""
    edges = _BUCKET_EDGES_MS
    counts = [0] * (len(edges) + 1)
    for lat in latencies_s:
        ms = lat * 1e3
        for i, edge in enumerate(edges):
            if ms <= edge:
                counts[i] += 1
                break
        else:
            counts[-1] += 1
    out = {f"<={edge:g}ms": counts[i] for i, edge in enumerate(edges)}
    out[f">{edges[-1]:g}ms"] = counts[-1]
    return out


def reference_digests(fixture, plans) -> tuple[list[str], float]:
    """Serial fault-free answers via direct base-table execution."""
    from repro.baselines import hive

    system = hive(fixture.catalog, domains=fixture.domains)
    t0 = time.perf_counter()
    digests = [answer_digest(system.execute(plan).result) for plan in plans]
    return digests, time.perf_counter() - t0


def run_phase(
    name: str,
    fixture,
    plans,
    ref_digests: list[str],
    *,
    workers: int,
    queue_depth: int,
    deadline_s: "float | None",
    retries: int,
    chaos_schedule: str,
    rate_qps: float,
    arrival_seed: int,
    shared_cache: bool = False,
) -> dict:
    """Drive one phase against a fresh adaptive system; return its report."""
    from repro.baselines import deepsea

    system = deepsea(fixture.catalog, domains=fixture.domains)
    service = QueryService(
        system,
        workers=workers,
        queue_depth=queue_depth,
        deadline_s=deadline_s,
        retries=retries,
        faults=chaos_schedule if name == "chaos" else None,
        shared_cache=shared_cache,
    ).start()
    rng = np.random.default_rng(arrival_seed)
    burst_size = queue_depth * 3
    tickets: list = [None] * len(plans)
    t0 = time.perf_counter()
    try:
        for i, plan in enumerate(plans):
            if name == "burst":
                if i and i % burst_size == 0:
                    time.sleep(0.15)  # let the queue drain between volleys
            else:
                time.sleep(float(rng.exponential(1.0 / rate_qps)))
            try:
                tickets[i] = service.submit(plan)
            except Overloaded:
                pass  # counted by the admission queue
        outcomes = [
            (i, ticket.result(timeout=120.0))
            for i, ticket in enumerate(tickets)
            if ticket is not None
        ]
        wall_s = time.perf_counter() - t0
    finally:
        service.stop()
    metrics = service.metrics()

    latencies: list[float] = []
    mismatches: list[int] = []
    unresolved = 0
    for i, outcome in outcomes:
        if outcome is None:
            unresolved += 1
            continue
        if outcome.status == "answered":
            latencies.append(outcome.latency_s)
            if answer_digest(outcome.table) != ref_digests[i]:
                mismatches.append(i)

    report = {
        "phase": name,
        "queries": len(plans),
        "wall_s": round(wall_s, 3),
        "qps": round(metrics["answered"] / wall_s, 1) if wall_s > 0 else 0.0,
        **metrics,
        **_percentiles(latencies),
        "latency_histogram": _histogram(latencies),
        "digest_mismatches": mismatches,
        "unresolved": unresolved,
        "mean_sim_cost_s": round(
            float(
                np.mean(
                    [o.sim_cost_s for _, o in outcomes if o and o.status == "answered"]
                )
            ),
            3,
        )
        if metrics["answered"]
        else 0.0,
    }
    return report


def check_gates(phases: dict[str, dict]) -> list[str]:
    """The serving invariants, as a list of human-readable violations."""
    problems: list[str] = []
    for name, phase in phases.items():
        if phase["digest_mismatches"]:
            problems.append(
                f"{name}: answer digests diverged from the serial fault-free "
                f"run for queries {phase['digest_mismatches']}"
            )
        if not phase["accounting_ok"]:
            problems.append(
                f"{name}: accounting violated — answered {phase['answered']} "
                f"+ shed {phase['shed']} + timed_out {phase['timed_out']} "
                f"+ failed {phase['failed']} != offered {phase['offered']}"
            )
        if phase["failed"]:
            problems.append(f"{name}: {phase['failed']} queries failed outright")
        if phase["unresolved"]:
            problems.append(f"{name}: {phase['unresolved']} tickets never resolved")
        stale_served = phase.get("shared_cache", {}).get("stale_served", 0)
        if stale_served:
            problems.append(
                f"{name}: shared tier served {stale_served} version-mismatched "
                "entries — stale reads are never acceptable"
            )
    if "burst" in phases and phases["burst"]["shed"] == 0:
        problems.append("burst: no queries were shed — admission control never fired")
    if "chaos" in phases:
        chaos = phases["chaos"]
        if chaos["retries"] == 0:
            problems.append("chaos: no reader retries — worker-crash path never fired")
        if chaos.get("writer", {}).get("steps", 0) == 0:
            problems.append("chaos: writer applied no steps — no concurrent adaptation")
        if chaos["pool_epoch"] == 0:
            problems.append("chaos: pool epoch never advanced — nothing repartitioned")
    return problems


def run_serve_bench(
    *,
    queries: int = 120,
    instance_gb: float = 20.0,
    seed: int = 2,
    workers: int = 2,
    queue_depth: int = 16,
    deadline_s: "float | None" = 5.0,
    retries: int = 2,
    chaos_schedule: str = "perfect-storm",
    rate_qps: float = 150.0,
    phases: "tuple[str, ...]" = PHASES,
    shared_cache: bool = False,
) -> dict:
    """Run the full serve benchmark; returns the JSON-ready report."""
    from repro.bench.harness import sdss_fixture
    from repro.workloads.generator import sdss_mapped_workload

    fixture = sdss_fixture(instance_gb)
    plans = sdss_mapped_workload(
        fixture.log, fixture.item_domain, n_queries=queries, seed=seed
    )
    digests, serial_s = reference_digests(fixture, plans)
    phase_reports: dict[str, dict] = {}
    for i, name in enumerate(phases):
        phase_reports[name] = run_phase(
            name,
            fixture,
            plans,
            digests,
            workers=workers,
            queue_depth=queue_depth,
            deadline_s=deadline_s,
            retries=retries,
            chaos_schedule=chaos_schedule,
            rate_qps=rate_qps,
            arrival_seed=seed + 1000 * (i + 1),
            shared_cache=shared_cache,
        )
    problems = check_gates(phase_reports)
    return {
        "benchmark": "serve-bench: open-loop load over the concurrent serving layer",
        "machine": {
            "platform": platform.platform(),
            "python": platform.python_version(),
            "cpus": os.cpu_count(),
        },
        "params": {
            "queries": queries,
            "instance_gb": instance_gb,
            "seed": seed,
            "workers": workers,
            "queue_depth": queue_depth,
            "deadline_s": deadline_s,
            "retries": retries,
            "chaos_schedule": chaos_schedule,
            "rate_qps": rate_qps,
            "shared_cache": shared_cache,
        },
        "serial_reference_s": round(serial_s, 3),
        "phases": phase_reports,
        "problems": problems,
        "ok": not problems,
    }
