"""Bounded admission queue: queue-based load leveling with typed shedding.

The queue is the service's only buffer between clients and executor
workers, and it is deliberately small.  Under overload the right behavior
is a *typed, immediate* rejection — :class:`~repro.errors.Overloaded` —
because the alternatives both turn overload into something worse: an
unbounded queue converts it into unbounded latency, and a blocking put
converts it into a hang.  ``offer`` therefore never blocks and ``take``
never busy-waits; both run under one condition variable.

Accounting is built in (``offered``/``shed``/``taken`` counters) because
the serving invariant is audited arithmetically: every offered query must
be accounted for as shed, answered, timed out, or failed — nothing may
vanish into the queue.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Any

from repro.errors import Overloaded


class AdmissionQueue:
    """A bounded FIFO with non-blocking, counted admission.

    ``close()`` starts the drain: later ``offer`` calls shed (the service
    is shutting down, which to a client is indistinguishable from
    overload), while ``take`` keeps returning queued items until the
    queue is empty and then returns ``None`` without waiting — the
    worker's signal to exit.
    """

    def __init__(self, depth: int):
        if depth < 1:
            raise ValueError("queue depth must be >= 1")
        self.depth = depth
        self._items: deque[Any] = deque()
        self._cond = threading.Condition()
        self._closed = False
        self.offered = 0
        self.shed = 0
        self.taken = 0

    def offer(self, item: Any) -> None:
        """Enqueue ``item`` or raise :class:`Overloaded` — never block."""
        with self._cond:
            self.offered += 1
            if self._closed or len(self._items) >= self.depth:
                self.shed += 1
                raise Overloaded(self.depth)
            self._items.append(item)
            self._cond.notify()

    def take(self, timeout: "float | None" = None) -> Any:
        """Dequeue the oldest item, waiting up to ``timeout`` seconds.

        Returns ``None`` on timeout, and immediately once the queue is
        closed and drained.
        """
        with self._cond:
            while not self._items:
                if self._closed:
                    return None
                if not self._cond.wait(timeout):
                    return None
            self.taken += 1
            return self._items.popleft()

    def close(self) -> None:
        """Refuse new work and wake every waiting taker."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()

    @property
    def closed(self) -> bool:
        return self._closed

    def __len__(self) -> int:
        with self._cond:
            return len(self._items)
