"""Epoch-pinned snapshot leases over the materialized-view pool.

A reader that plans a rewriting against the pool must be able to finish
executing it even while the single writer repartitions the very views it
is reading.  The pool already provides the two halves of an MVCC story:
a monotonic ``epoch`` bumped on every residency mutation, and immutable
``FragmentEntry`` records whose payloads never change in place (evict +
re-admit, never overwrite).  A lease therefore only needs to pin three
cheap things at acquire time — the epoch, a shallow copy of the
fragment-id map, and the per-view cover versions — and to guarantee that
payloads of entries that *leave* the pool remain readable while any lease
that could reference them is alive.

That guarantee is the :class:`SnapshotManager`'s retention store: the
pool's ``retention`` hook offers every departing entry's payload before
its file is deleted, and the manager keeps it for exactly as long as some
active lease predates the eviction.  Reads prefer the live file (so the
common, race-free case costs nothing extra) and fall back to the
retained payload — byte-identical by construction — only when the writer
won the race.

Locking: ``acquire`` must run under the service's plan lock (so the
snapshot is consistent with the plan just built against the live pool);
the manager's own lock protects the lease table and retention store,
which the writer thread mutates through the hook.
"""

from __future__ import annotations

import itertools
import threading
from typing import TYPE_CHECKING

from repro.errors import BlockLostError, PoolError, RecoveryError

if TYPE_CHECKING:
    from repro.engine.cost import CostLedger
    from repro.engine.table import Table
    from repro.storage.pool import FragmentEntry, MaterializedViewPool


class LeasedPoolView:
    """A read-only pool facade pinned to one lease's epoch.

    Exposes exactly the surface the executor and the execution-side
    caches consult — ``uid``/``epoch``/``cover_version`` for cache keys,
    ``get_fragment``/``read_entry``/``whole_view_entry`` for evaluation,
    ``hdfs`` for the fragment cache's min/max peeks — resolving entry
    lookups against the pinned snapshot and payload reads against
    live-file-then-retained.
    """

    def __init__(self, lease: "EpochLease"):
        self._lease = lease
        self._pool = lease.manager.pool
        self._whole = {
            entry.key.view_id: entry
            for entry in lease.entries.values()
            if entry.key.attr is None
        }

    @property
    def uid(self) -> int:
        return self._pool.uid

    @property
    def shared_ident(self) -> "tuple | None":
        """The underlying pool's shared-cache identity (pass-through).

        Safe to forward because shared-tier entries are validated against
        the lease's *pinned* cover versions (:meth:`cover_version`), so a
        reader on an older epoch simply misses entries published at newer
        versions — and vice versa — instead of ever mixing epochs.
        """
        return getattr(self._pool, "shared_ident", None)

    @property
    def epoch(self) -> int:
        return self._lease.epoch

    @property
    def hdfs(self):
        return self._pool.hdfs

    def cover_version(self, view_id: str) -> int:
        return self._lease.cover_versions.get(view_id, 0)

    def get_fragment(self, fragment_id: str) -> "FragmentEntry":
        try:
            return self._lease.entries[fragment_id]
        except KeyError:
            raise PoolError(
                f"fragment {fragment_id!r} not in epoch-{self._lease.epoch} snapshot"
            ) from None

    def whole_view_entry(self, view_id: str) -> "FragmentEntry | None":
        return self._whole.get(view_id)

    def read_entry(self, fragment_id: str, ledger: "CostLedger | None" = None) -> "Table":
        """The entry's payload as of the pinned epoch.

        Resolution ladder: live file (with the pool's recompute-from-base
        recovery if every replica is lost) → retained payload (the writer
        evicted the entry after this lease was acquired) → a typed
        :class:`RecoveryError` for the service's degradation ladder.
        Every successful rung returns byte-identical rows: files are
        immutable, retention copies the exact departing payload, and
        recovery is already required to reproduce equivalent bytes.
        """
        entry = self.get_fragment(fragment_id)
        pool = self._pool
        try:
            return pool.hdfs.read(entry.path, ledger, charge_payload=False)
        except BlockLostError:
            if pool.recovery is not None:
                try:
                    return pool.recovery.recover(pool, entry, ledger)
                except (PoolError, RecoveryError):
                    pass  # writer deleted the file mid-recovery; try retention
        except PoolError:
            pass  # evicted after the lease was acquired; try retention
        table = self._lease.manager.retained_read(fragment_id)
        if table is None:
            raise RecoveryError(
                f"entry {fragment_id!r} of epoch-{self._lease.epoch} snapshot is "
                f"neither live nor retained"
            )
        return table


class EpochLease:
    """One reader's pin on the pool configuration of a single epoch."""

    def __init__(
        self,
        manager: "SnapshotManager",
        lease_id: int,
        epoch: int,
        entries: "dict[str, FragmentEntry]",
        cover_versions: dict[str, int],
    ):
        self.manager = manager
        self.lease_id = lease_id
        self.epoch = epoch
        self.entries = entries
        self.cover_versions = cover_versions
        self._released = False

    def pool_view(self) -> LeasedPoolView:
        return LeasedPoolView(self)

    def release(self) -> None:
        if not self._released:
            self._released = True
            self.manager.release(self)

    def __enter__(self) -> "EpochLease":
        return self

    def __exit__(self, *exc) -> None:
        self.release()


class SnapshotManager:
    """Mints epoch leases and retains payloads their snapshots still need."""

    def __init__(self, pool: "MaterializedViewPool"):
        self.pool = pool
        self._lock = threading.Lock()
        self._ids = itertools.count(1)
        # lease id -> pinned epoch
        self._active: dict[int, int] = {}
        # fragment id -> (epoch at eviction, departing payload)
        self._retained: dict[str, tuple[int, "Table"]] = {}
        self.retained_total = 0
        self.served_from_retained = 0
        pool.retention = self._retain

    def detach(self) -> None:
        """Unhook from the pool and drop every retained payload."""
        # Note ``==`` not ``is``: bound methods are minted per access.
        if self.pool.retention == self._retain:
            self.pool.retention = None
        with self._lock:
            self._retained.clear()

    # ------------------------------------------------------------------
    def acquire(self) -> EpochLease:
        """Pin the current pool configuration.  Call under the plan lock."""
        with self._lock:
            lease_id = next(self._ids)
            epoch = self.pool.epoch
            self._active[lease_id] = epoch
        return EpochLease(
            self,
            lease_id,
            epoch,
            self.pool.entries_snapshot(),
            self.pool.cover_versions_snapshot(),
        )

    def release(self, lease: EpochLease) -> None:
        with self._lock:
            self._active.pop(lease.lease_id, None)
            self._prune_locked()

    @property
    def active_leases(self) -> int:
        with self._lock:
            return len(self._active)

    # ------------------------------------------------------------------
    def _retain(self, entry: "FragmentEntry", payload: "Table") -> None:
        """Pool retention hook: runs in the writer thread, mid-eviction."""
        with self._lock:
            if not self._active:
                return  # nobody could reference this payload; drop it
            self._retained[entry.fragment_id] = (self.pool.epoch, payload)
            self.retained_total += 1

    def retained_read(self, fragment_id: str) -> "Table | None":
        with self._lock:
            item = self._retained.get(fragment_id)
            if item is None:
                return None
            self.served_from_retained += 1
            return item[1]

    def _prune_locked(self) -> None:
        """Drop payloads no active lease can reference.

        A lease pinned at epoch ``e`` can only reference entries resident
        at ``e``, so a payload evicted at epoch ``r`` is needed exactly
        while some active lease has ``e <= r`` — once every pin is newer
        than the eviction, the payload is garbage.
        """
        if not self._retained:
            return
        if not self._active:
            self._retained.clear()
            return
        oldest = min(self._active.values())
        for fid in [f for f, (r, _) in self._retained.items() if r < oldest]:
            del self._retained[fid]

    @property
    def retained_count(self) -> int:
        with self._lock:
            return len(self._retained)
