"""Factories for every system variant evaluated in the paper (§10).

Each factory returns a configured :class:`~repro.core.deepsea.DeepSea`
instance; the baselines differ only by policy, so all share the matching,
execution, and accounting machinery — exactly how the paper's comparisons
are meant to isolate one design decision at a time.
"""

from __future__ import annotations

from repro.core.deepsea import DeepSea
from repro.core.policies import Policy
from repro.engine.catalog import Catalog
from repro.engine.cost import ClusterSpec
from repro.partitioning.bounding import SizeBounds
from repro.partitioning.intervals import Interval


def _make(catalog, cluster, smax_bytes, domains, policy):
    return DeepSea(
        catalog,
        cluster=cluster,
        smax_bytes=smax_bytes,
        policy=policy,
        domains=domains,
    )


def hive(
    catalog: Catalog,
    *,
    cluster: ClusterSpec | None = None,
    domains: dict[str, Interval] | None = None,
) -> DeepSea:
    """H — vanilla Hive: no materialization, selections pushed down."""
    return _make(catalog, cluster, None, domains, Policy(materialize=False))


def non_partitioned(
    catalog: Catalog,
    *,
    cluster: ClusterSpec | None = None,
    smax_bytes: float | None = None,
    domains: dict[str, Interval] | None = None,
    evidence_factor: float = 1.0,
) -> DeepSea:
    """NP — whole-view materialization with logical matching (ReStore-like)."""
    policy = Policy(partitioning="none", evidence_factor=evidence_factor)
    return _make(catalog, cluster, smax_bytes, domains, policy)


def equidepth(
    catalog: Catalog,
    fragments: int,
    *,
    cluster: ClusterSpec | None = None,
    smax_bytes: float | None = None,
    domains: dict[str, Interval] | None = None,
    evidence_factor: float = 1.0,
    bounds: SizeBounds | None = SizeBounds(),
) -> DeepSea:
    """E-k — non-adaptive equi-depth partitioning with k fragments."""
    policy = Policy(
        partitioning="equidepth",
        equidepth_fragments=fragments,
        repartition=False,
        evidence_factor=evidence_factor,
        bounds=bounds,
    )
    return _make(catalog, cluster, smax_bytes, domains, policy)


def no_repartition(
    catalog: Catalog,
    *,
    cluster: ClusterSpec | None = None,
    smax_bytes: float | None = None,
    domains: dict[str, Interval] | None = None,
    evidence_factor: float = 1.0,
    bounds: SizeBounds | None = SizeBounds(),
) -> DeepSea:
    """NR — adaptive initial partitioning, never refined (§10.4)."""
    policy = Policy(repartition=False, evidence_factor=evidence_factor, bounds=bounds)
    return _make(catalog, cluster, smax_bytes, domains, policy)


def nectar(
    catalog: Catalog,
    *,
    cluster: ClusterSpec | None = None,
    smax_bytes: float | None = None,
    domains: dict[str, Interval] | None = None,
    evidence_factor: float = 1.0,
) -> DeepSea:
    """N — Nectar's selection strategy (no benefit, no decay, no MLE)."""
    policy = Policy(value_model="nectar", use_mle=False, evidence_factor=evidence_factor)
    return _make(catalog, cluster, smax_bytes, domains, policy)


def nectar_plus(
    catalog: Catalog,
    *,
    cluster: ClusterSpec | None = None,
    smax_bytes: float | None = None,
    domains: dict[str, Interval] | None = None,
    evidence_factor: float = 1.0,
) -> DeepSea:
    """N+ — Nectar extended with accumulated (undecayed) benefit."""
    policy = Policy(value_model="nectar+", use_mle=False, evidence_factor=evidence_factor)
    return _make(catalog, cluster, smax_bytes, domains, policy)


def deepsea(
    catalog: Catalog,
    *,
    cluster: ClusterSpec | None = None,
    smax_bytes: float | None = None,
    domains: dict[str, Interval] | None = None,
    evidence_factor: float = 1.0,
    overlapping: bool = True,
    use_mle: bool = True,
    bounds: SizeBounds | None = SizeBounds(),
) -> DeepSea:
    """DS — the full system."""
    policy = Policy(
        evidence_factor=evidence_factor,
        overlapping=overlapping,
        use_mle=use_mle,
        bounds=bounds,
    )
    return _make(catalog, cluster, smax_bytes, domains, policy)
