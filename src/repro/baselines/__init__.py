"""System-variant factories (H, NP, E-k, NR, Nectar, Nectar+, DS)."""

from repro.baselines.systems import (
    deepsea,
    equidepth,
    hive,
    nectar,
    nectar_plus,
    no_repartition,
    non_partitioned,
)

__all__ = [
    "deepsea",
    "equidepth",
    "hive",
    "nectar",
    "nectar_plus",
    "no_repartition",
    "non_partitioned",
]
