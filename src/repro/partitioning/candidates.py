"""Partition-candidate generation (Definition 7).

Given the interval ``I = [l, u]`` of a query's range selection and the
current fragment intervals of a view partition (resident or statistical),
produce split candidates: for every fragment ``I' = [l', u']`` that one of
the selection endpoints falls strictly inside, the fragment is split at
that endpoint.  The five cases of Definition 7 fall out of two primitive
splits:

* endpoint ``l`` strictly inside ``I'`` → ``split_before(l)`` giving
  ``[l', l)`` and ``[l, u']`` (case 4);
* endpoint ``u`` strictly inside ``I'`` → ``split_after(u)`` giving
  ``[l', u]`` and ``(u, u']`` (case 3);
* both endpoints inside → three pieces ``[l', l)``, ``[l, u]``, ``(u, u']``
  (case 5);
* disjoint or fragment ⊆ query (cases 1–2) → no candidates.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.partitioning.intervals import Interval


@dataclass(frozen=True)
class SplitCandidate:
    """A proposed refinement: ``parent`` replaced by ``pieces`` (which tile it)."""

    parent: Interval
    pieces: tuple[Interval, ...]


def _can_split_before(fragment: Interval, point: float) -> bool:
    """True iff ``split_before(point)`` yields two non-empty pieces."""
    if not fragment.contains_point(point):
        return False
    # the left piece [lo, point) must contain some value < point
    return fragment._lower_key() < (point, 0)


def _can_split_after(fragment: Interval, point: float) -> bool:
    """True iff ``split_after(point)`` yields two non-empty pieces."""
    if not fragment.contains_point(point):
        return False
    # the right piece (point, hi] must contain some value > point
    return point < fragment.hi


def split_fragment(fragment: Interval, selection: Interval) -> SplitCandidate | None:
    """Definition 7 for a single fragment; ``None`` when no candidate arises."""
    if not fragment.overlaps(selection):
        return None  # case 1
    if selection.contains(fragment):
        return None  # case 2
    lo_inside = selection.low is not None and _can_split_before(fragment, selection.lo)
    hi_inside = selection.high is not None and _can_split_after(fragment, selection.hi)
    if lo_inside and hi_inside:  # case 5
        left, rest = fragment.split_before(selection.lo)
        middle, right = rest.split_after(selection.hi)
        return SplitCandidate(fragment, (left, middle, right))
    if lo_inside:  # case 4 (selection overlaps from the right)
        left, right = fragment.split_before(selection.lo)
        return SplitCandidate(fragment, (left, right))
    if hi_inside:  # case 3 (selection overlaps from the left)
        left, right = fragment.split_after(selection.hi)
        return SplitCandidate(fragment, (left, right))
    return None


def partition_candidates(
    selection: Interval, fragments: list[Interval], domain: Interval
) -> list[SplitCandidate]:
    """All Definition-7 split candidates for one selection interval.

    The selection is clamped to the attribute domain first (the paper's
    "replace l with the domain lower bound" convention); a selection
    entirely outside the domain produces nothing.
    """
    clamped = selection.intersect(domain)
    if clamped is None:
        return []
    candidates = []
    for fragment in fragments:
        cand = split_fragment(fragment, clamped)
        if cand is not None:
            candidates.append(cand)
    return candidates


def initial_candidates(selection: Interval, domain: Interval) -> list[SplitCandidate]:
    """Candidates for a view with no partition yet: seed with ``{D(V, A)}``."""
    return partition_candidates(selection, [domain], domain)
