"""Partition-candidate generation (Definition 7).

Given the interval ``I = [l, u]`` of a query's range selection and the
current fragment intervals of a view partition (resident or statistical),
produce split candidates: for every fragment ``I' = [l', u']`` that one of
the selection endpoints falls strictly inside, the fragment is split at
that endpoint.  The five cases of Definition 7 fall out of two primitive
splits:

* endpoint ``l`` strictly inside ``I'`` → ``split_before(l)`` giving
  ``[l', l)`` and ``[l, u']`` (case 4);
* endpoint ``u`` strictly inside ``I'`` → ``split_after(u)`` giving
  ``[l', u]`` and ``(u, u']`` (case 3);
* both endpoints inside → three pieces ``[l', l)``, ``[l, u]``, ``(u, u']``
  (case 5);
* disjoint or fragment ⊆ query (cases 1–2) → no candidates.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.partitioning.intervals import Interval

# Below this many fragments the scalar loop beats the cost of building
# the bound-key arrays; above it the vectorized case discrimination wins.
_VECTOR_MIN_FRAGMENTS = 16


@dataclass(frozen=True)
class SplitCandidate:
    """A proposed refinement: ``parent`` replaced by ``pieces`` (which tile it)."""

    parent: Interval
    pieces: tuple[Interval, ...]


def _can_split_before(fragment: Interval, point: float) -> bool:
    """True iff ``split_before(point)`` yields two non-empty pieces."""
    if not fragment.contains_point(point):
        return False
    # the left piece [lo, point) must contain some value < point
    return fragment._lower_key() < (point, 0)


def _can_split_after(fragment: Interval, point: float) -> bool:
    """True iff ``split_after(point)`` yields two non-empty pieces."""
    if not fragment.contains_point(point):
        return False
    # the right piece (point, hi] must contain some value > point
    return point < fragment.hi


def split_fragment(fragment: Interval, selection: Interval) -> SplitCandidate | None:
    """Definition 7 for a single fragment; ``None`` when no candidate arises."""
    if not fragment.overlaps(selection):
        return None  # case 1
    if selection.contains(fragment):
        return None  # case 2
    lo_inside = selection.low is not None and _can_split_before(fragment, selection.lo)
    hi_inside = selection.high is not None and _can_split_after(fragment, selection.hi)
    if lo_inside and hi_inside:  # case 5
        left, rest = fragment.split_before(selection.lo)
        middle, right = rest.split_after(selection.hi)
        return SplitCandidate(fragment, (left, middle, right))
    if lo_inside:  # case 4 (selection overlaps from the right)
        left, right = fragment.split_before(selection.lo)
        return SplitCandidate(fragment, (left, right))
    if hi_inside:  # case 3 (selection overlaps from the left)
        left, right = fragment.split_after(selection.hi)
        return SplitCandidate(fragment, (left, right))
    return None


def partition_candidates(
    selection: Interval, fragments: list[Interval], domain: Interval
) -> list[SplitCandidate]:
    """All Definition-7 split candidates for one selection interval.

    The selection is clamped to the attribute domain first (the paper's
    "replace l with the domain lower bound" convention); a selection
    entirely outside the domain produces nothing.
    """
    clamped = selection.intersect(domain)
    if clamped is None:
        return []
    if len(fragments) < _VECTOR_MIN_FRAGMENTS:
        candidates = []
        for fragment in fragments:
            cand = split_fragment(fragment, clamped)
            if cand is not None:
                candidates.append(cand)
        return candidates
    return _partition_candidates_vector(clamped, fragments)


def _partition_candidates_vector(
    clamped: Interval, fragments: list[Interval]
) -> list[SplitCandidate]:
    """Definition 7 with the per-fragment case tests as array ops.

    The five cases of :func:`split_fragment` reduce to lexicographic
    comparisons over the fragments' ``(value, openness)`` bound keys —
    evaluated here as vectorized two-component compares over all fragments
    at once (the float comparisons match Python tuple comparison bit for
    bit).  Only the fragments that actually split construct interval
    objects, via the same ``split_before`` / ``split_after`` calls in the
    same fragment order, so the candidate list is element-for-element the
    scalar loop's.
    """
    keys = np.array([f._lkey + f._ukey for f in fragments], dtype=np.float64)
    lk, uk = keys[:, :2], keys[:, 2:]
    sl, su = clamped._lkey, clamped._ukey
    # case 1 — disjoint: no overlap between fragment and selection.
    overlaps = ((lk[:, 0] < su[0]) | ((lk[:, 0] == su[0]) & (lk[:, 1] <= su[1]))) & (
        (sl[0] < uk[:, 0]) | ((sl[0] == uk[:, 0]) & (sl[1] <= uk[:, 1]))
    )
    # case 2 — fragment ⊆ selection.
    contained = ((sl[0] < lk[:, 0]) | ((sl[0] == lk[:, 0]) & (sl[1] <= lk[:, 1]))) & (
        (uk[:, 0] < su[0]) | ((uk[:, 0] == su[0]) & (uk[:, 1] <= su[1]))
    )
    splittable = overlaps & ~contained
    lo_inside = np.zeros(len(fragments), dtype=bool)
    hi_inside = np.zeros(len(fragments), dtype=bool)
    if clamped.low is not None:
        x = clamped.lo
        # _can_split_before: fragment.contains_point(x) and fragment.lo < x
        # (the openness flag of the scalar `_lower_key() < (x, 0)` test can
        # never decide it, so it reduces to the bound comparison).
        inside = ~((x < lk[:, 0]) | ((x == lk[:, 0]) & (lk[:, 1] == 1.0))) & ~(
            (x > uk[:, 0]) | ((x == uk[:, 0]) & (uk[:, 1] == -1.0))
        )
        lo_inside = inside & (lk[:, 0] < x)
    if clamped.high is not None:
        x = clamped.hi
        # _can_split_after: fragment.contains_point(x) and x < fragment.hi.
        inside = ~((x < lk[:, 0]) | ((x == lk[:, 0]) & (lk[:, 1] == 1.0))) & ~(
            (x > uk[:, 0]) | ((x == uk[:, 0]) & (uk[:, 1] == -1.0))
        )
        hi_inside = inside & (x < uk[:, 0])
    candidates = []
    for i in np.flatnonzero(splittable & (lo_inside | hi_inside)):
        fragment = fragments[i]
        if lo_inside[i] and hi_inside[i]:  # case 5
            left, rest = fragment.split_before(clamped.lo)
            middle, right = rest.split_after(clamped.hi)
            candidates.append(SplitCandidate(fragment, (left, middle, right)))
        elif lo_inside[i]:  # case 4
            left, right = fragment.split_before(clamped.lo)
            candidates.append(SplitCandidate(fragment, (left, right)))
        else:  # case 3
            left, right = fragment.split_after(clamped.hi)
            candidates.append(SplitCandidate(fragment, (left, right)))
    return candidates


def initial_candidates(selection: Interval, domain: Interval) -> list[SplitCandidate]:
    """Candidates for a view with no partition yet: seed with ``{D(V, A)}``."""
    return partition_candidates(selection, [domain], domain)
