"""Equi-depth partitioning — the paper's non-adaptive baseline (§10.2).

Fragment boundaries are chosen at value quantiles of the partition column
so every fragment holds roughly the same number of rows, independent of
the workload's access pattern.
"""

from __future__ import annotations

import numpy as np

from repro.errors import PartitionError
from repro.partitioning.intervals import Interval


def equidepth_boundaries(values: np.ndarray, k: int) -> list[float]:
    """Interior boundaries that split ``values`` into ``k`` equal-count runs.

    Duplicate quantiles (heavy skew in the column) are collapsed, so the
    result may contain fewer than ``k - 1`` boundaries.
    """
    if k < 1:
        raise PartitionError(f"fragment count must be positive, got {k}")
    if len(values) == 0 or k == 1:
        return []
    qs = np.quantile(values, np.linspace(0, 1, k + 1)[1:-1])
    boundaries: list[float] = []
    for q in np.atleast_1d(qs):
        q = float(q)
        if not boundaries or q > boundaries[-1]:
            boundaries.append(q)
    return boundaries


def equidepth_intervals(values: np.ndarray, k: int, domain: Interval) -> list[Interval]:
    """An equi-depth horizontal partition of ``domain`` with ≤ ``k`` fragments.

    Fragments are ``[d_lo, b1]``, ``(b1, b2]``, …, ``(b_last, d_hi]`` — a
    disjoint cover of the domain (Definition 1).
    """
    if not domain.is_bounded():
        raise PartitionError("equi-depth partitioning requires a bounded domain")
    boundaries = [b for b in equidepth_boundaries(values, k) if domain.lo < b < domain.hi]
    if not boundaries:
        return [domain]
    intervals = [Interval(domain.low, boundaries[0], domain.low_open, False)]
    for prev, cur in zip(boundaries, boundaries[1:]):
        intervals.append(Interval.open_closed(prev, cur))
    intervals.append(Interval(boundaries[-1], domain.high, True, domain.high_open))
    return intervals
