"""Fragment-size bounding (§9).

Two guards on fragment sizes when materializing a partition:

* **Upper bound** — a fragment larger than ``phi × S(V)`` is split into
  equal-width pieces, so that infrequently accessed cold ranges do not end
  up as one enormous fragment whose later split would be very expensive.
* **Lower bound** — fragments should not be smaller than the file system's
  block size (HDFS favours large blocks); splitting never produces pieces
  below the block size.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import PartitionError
from repro.partitioning.intervals import Interval


@dataclass(frozen=True)
class SizeBounds:
    """Bounding policy for fragments of one view.

    Attributes:
        phi: Max fragment size as a fraction of the view size (§9); ``None``
            disables the upper bound (used by the Fig-6 experiments, which
            explicitly unbound fragment size).
        min_bytes: Lower bound, normally the HDFS block size.
    """

    phi: float | None = 0.10
    min_bytes: float = 128 * 1024 * 1024

    def max_bytes(self, view_size_bytes: float) -> float | None:
        if self.phi is None:
            return None
        return self.phi * view_size_bytes


def split_count(fragment_bytes: float, max_bytes: float | None, min_bytes: float) -> int:
    """How many equal pieces an oversized fragment should become.

    Honours both bounds: enough pieces that each is ≤ ``max_bytes``, but
    never so many that pieces drop below ``min_bytes``.
    """
    if fragment_bytes <= 0:
        return 1
    want = 1 if max_bytes is None else max(1, math.ceil(fragment_bytes / max_bytes))
    cap = max(1, math.floor(fragment_bytes / min_bytes)) if min_bytes > 0 else want
    return max(1, min(want, cap))


def split_equal_width(interval: Interval, pieces: int) -> list[Interval]:
    """Split ``interval`` into ``pieces`` equal-width sub-intervals.

    The first piece keeps the original lower bound/openness, the last keeps
    the upper; interior boundaries follow the ``(lo, hi]`` convention so
    the pieces form a disjoint cover of the original interval.
    """
    if pieces < 1:
        raise PartitionError(f"piece count must be positive, got {pieces}")
    if pieces == 1:
        return [interval]
    if not interval.is_bounded():
        raise PartitionError("cannot equal-width split an unbounded interval")
    width = interval.width / pieces
    out: list[Interval] = []
    lo = interval.lo
    lo_open = interval.low_open
    for i in range(pieces):
        hi = interval.hi if i == pieces - 1 else interval.lo + (i + 1) * width
        hi_open = interval.high_open if i == pieces - 1 else False
        out.append(Interval(lo, hi, lo_open, hi_open))
        lo, lo_open = hi, True  # next piece starts just after
    return out


def bound_fragment(
    interval: Interval,
    fragment_bytes: float,
    view_bytes: float,
    bounds: SizeBounds,
) -> list[Interval]:
    """Apply both size bounds to one fragment, returning its replacement(s)."""
    n = split_count(fragment_bytes, bounds.max_bytes(view_bytes), bounds.min_bytes)
    if n == 1 or not interval.is_bounded() or interval.width == 0:
        return [interval]
    return split_equal_width(interval, n)


def merge_undersized(
    intervals: list[Interval],
    sizes: list[float],
    min_bytes: float,
) -> list[Interval]:
    """Greedily merge *adjacent* undersized fragments (the §9 lower bound).

    Takes intervals in partition order with their byte sizes; any fragment
    smaller than ``min_bytes`` is merged with its successor (or, at the
    tail, its predecessor) until every surviving fragment meets the bound
    or only one fragment remains.  Only adjacent (touching, non-
    overlapping) intervals are merged, so a horizontal partition stays
    one.
    """
    if len(intervals) != len(sizes):
        raise PartitionError("intervals and sizes must parallel each other")
    merged: list[tuple[Interval, float]] = []
    for interval, size in zip(intervals, sizes):
        if merged and merged[-1][1] < min_bytes and (merged[-1][0].adjacent_to(interval)):
            prev_iv, prev_size = merged[-1]
            merged[-1] = (prev_iv.hull(interval), prev_size + size)
        else:
            merged.append((interval, size))
    # Tail fragment may still be undersized: fold it into its predecessor.
    while (
        len(merged) > 1
        and merged[-1][1] < min_bytes
        and merged[-2][0].adjacent_to(merged[-1][0])
    ):
        prev_iv, prev_size = merged[-2]
        last_iv, last_size = merged[-1]
        merged[-2:] = [(prev_iv.hull(last_iv), prev_size + last_size)]
    return [iv for iv, _ in merged]
