"""Interval algebra over ordered attribute domains.

Intervals are the common currency of this system: query range predicates,
fragment boundaries (Definition 1), partition candidates (Definition 7),
and Algorithm 2's greedy cover all manipulate them.  An interval has
numeric endpoints (``None`` meaning unbounded) and per-endpoint open/closed
flags, so the paper's mixed-bound fragments such as ``[0, 10]`` and
``(10, 20]`` are represented exactly.
"""

from __future__ import annotations

import math
from bisect import bisect_right
from dataclasses import dataclass, field

import numpy as np

from repro.errors import IntervalError

_NEG_INF = -math.inf
_POS_INF = math.inf


@dataclass(frozen=True, order=False)
class Interval:
    """A numeric interval with independently open or closed endpoints.

    ``low=None`` / ``high=None`` denote unbounded ends.  The interval must
    be non-empty: ``low < high``, or ``low == high`` with both ends closed
    (a point interval).
    """

    low: float | None = None
    high: float | None = None
    low_open: bool = False
    high_open: bool = False
    # Precomputed sort keys and hash: interval comparisons dominate the
    # matching and selection hot paths (millions of _lower_key/_upper_key
    # calls per workload), so the keys are built once at construction.
    # They are derived from the four defining fields, so excluding them
    # from __eq__ changes nothing observable.
    _lkey: tuple = field(init=False, repr=False, compare=False)
    _ukey: tuple = field(init=False, repr=False, compare=False)
    _hash: int = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        lo = _NEG_INF if self.low is None else self.low
        hi = _POS_INF if self.high is None else self.high
        if lo > hi:
            raise IntervalError(f"empty interval: low={self.low} > high={self.high}")
        if lo == hi and (self.low_open or self.high_open):
            raise IntervalError(f"empty interval at point {lo}")
        object.__setattr__(self, "_lkey", (lo, 1 if self.low_open else 0))
        object.__setattr__(self, "_ukey", (hi, -1 if self.high_open else 0))
        object.__setattr__(
            self, "_hash", hash((self.low, self.high, self.low_open, self.high_open))
        )

    def __hash__(self) -> int:
        return self._hash

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def closed(cls, low: float, high: float) -> "Interval":
        """``[low, high]``"""
        return cls(low, high, False, False)

    @classmethod
    def open_closed(cls, low: float, high: float) -> "Interval":
        """``(low, high]``"""
        return cls(low, high, True, False)

    @classmethod
    def closed_open(cls, low: float, high: float) -> "Interval":
        """``[low, high)``"""
        return cls(low, high, False, True)

    @classmethod
    def open(cls, low: float, high: float) -> "Interval":
        """``(low, high)``"""
        return cls(low, high, True, True)

    @classmethod
    def point(cls, value: float) -> "Interval":
        """``[value, value]``"""
        return cls(value, value, False, False)

    @classmethod
    def at_least(cls, low: float) -> "Interval":
        """``[low, +inf)``"""
        return cls(low, None, False, False)

    @classmethod
    def at_most(cls, high: float) -> "Interval":
        """``(-inf, high]``"""
        return cls(None, high, False, False)

    @classmethod
    def unbounded(cls) -> "Interval":
        """``(-inf, +inf)``"""
        return cls(None, None, False, False)

    # ------------------------------------------------------------------
    # Endpoint access
    # ------------------------------------------------------------------
    @property
    def lo(self) -> float:
        return self._lkey[0]

    @property
    def hi(self) -> float:
        return self._ukey[0]

    @property
    def width(self) -> float:
        """Length of the interval (infinite for unbounded ends)."""
        return self.hi - self.lo

    @property
    def midpoint(self) -> float:
        if math.isinf(self.lo) or math.isinf(self.hi):
            raise IntervalError("midpoint of an unbounded interval")
        return (self.lo + self.hi) / 2.0

    def is_bounded(self) -> bool:
        return not (math.isinf(self.lo) or math.isinf(self.hi))

    # ------------------------------------------------------------------
    # Point and interval relations
    # ------------------------------------------------------------------
    def contains_point(self, x: float) -> bool:
        if x < self.lo or (x == self.lo and self.low_open):
            return False
        if x > self.hi or (x == self.hi and self.high_open):
            return False
        return True

    def _lower_key(self) -> tuple[float, int]:
        """Sortable lower-bound key: open bounds start strictly later."""
        return self._lkey

    def _upper_key(self) -> tuple[float, int]:
        """Sortable upper-bound key: open bounds end strictly earlier."""
        return self._ukey

    def contains(self, other: "Interval") -> bool:
        """True iff ``other`` ⊆ ``self``."""
        return self._lower_key() <= other._lower_key() and other._upper_key() <= self._upper_key()

    def overlaps(self, other: "Interval") -> bool:
        """True iff the intervals share at least one point.

        Equivalent to ``intersect(other) is not None``: the intersection is
        empty exactly when its lower key exceeds its upper key, i.e. when
        one interval's lower key exceeds the other's upper key.  Comparing
        the precomputed keys avoids allocating the intersection.
        """
        return self._lkey <= other._ukey and other._lkey <= self._ukey

    def intersect(self, other: "Interval") -> "Interval | None":
        """The intersection, or ``None`` when disjoint.

        Containment fast paths return the contained operand itself — the
        intersection of nested intervals *is* the inner interval, and
        returning the existing (frozen, value-equal) instance skips the
        construction that dominates interval arithmetic on the matching
        and pruning hot paths.
        """
        sl, su = self._lkey, self._ukey
        ol, ou = other._lkey, other._ukey
        if ol <= sl and su <= ou:
            return self
        if sl <= ol and ou <= su:
            return other
        if sl > ou or ol > su:
            return None
        lo_key = max(sl, ol)
        hi_key = min(su, ou)
        lo, lo_open = lo_key[0], lo_key[1] == 1
        hi, hi_open = hi_key[0], hi_key[1] == -1
        if lo > hi or (lo == hi and (lo_open or hi_open)):
            return None
        return Interval(
            None if math.isinf(lo) else lo,
            None if math.isinf(hi) else hi,
            lo_open,
            hi_open,
        )

    def adjacent_to(self, other: "Interval") -> bool:
        """True iff the intervals touch without overlapping (e.g. [0,1) and [1,2])."""
        if self.overlaps(other):
            return False
        left, right = (self, other) if self._upper_key() <= other._lower_key() else (other, self)
        return left.hi == right.lo and (left.high_open != right.low_open)

    def hull(self, other: "Interval") -> "Interval":
        """Smallest interval containing both (used when merging fragments)."""
        lo_key = min(self._lower_key(), other._lower_key())
        hi_key = max(self._upper_key(), other._upper_key())
        lo, lo_open = lo_key[0], lo_key[1] == 1
        hi, hi_open = hi_key[0], hi_key[1] == -1
        return Interval(
            None if math.isinf(lo) else lo,
            None if math.isinf(hi) else hi,
            lo_open,
            hi_open,
        )

    # ------------------------------------------------------------------
    # Splitting (partition-candidate generation, Definition 7)
    # ------------------------------------------------------------------
    def split_before(self, point: float) -> tuple["Interval", "Interval"]:
        """Split into ``[lo, point)`` and ``[point, hi]`` pieces.

        The point itself goes to the right piece, matching the paper's
        case-4 candidates ``[l', l)`` and ``[l, u']``.  Raises if the split
        would produce an empty piece.
        """
        if not self.contains_point(point):
            raise IntervalError(f"{point} not inside {self}")
        left = Interval(self.low, point, self.low_open, True)
        right = Interval(point, self.high, False, self.high_open)
        return left, right

    def split_after(self, point: float) -> tuple["Interval", "Interval"]:
        """Split into ``[lo, point]`` and ``(point, hi]`` pieces.

        The point itself goes to the left piece, matching the paper's
        case-3 candidates ``[l', u]`` and ``(u, u']``.
        """
        if not self.contains_point(point):
            raise IntervalError(f"{point} not inside {self}")
        left = Interval(self.low, point, self.low_open, False)
        right = Interval(point, self.high, True, self.high_open)
        return left, right

    # ------------------------------------------------------------------
    # Data access
    # ------------------------------------------------------------------
    def mask(self, values: np.ndarray) -> np.ndarray:
        """Boolean mask of array elements that fall inside the interval."""
        mask: "np.ndarray | None" = None
        if self.low is not None:
            mask = values > self.low if self.low_open else values >= self.low
        if self.high is not None:
            high = values < self.high if self.high_open else values <= self.high
            mask = high if mask is None else np.logical_and(mask, high, out=mask)
        if mask is None:
            mask = np.ones(len(values), dtype=bool)
        return mask

    def clamp(self, domain: "Interval") -> "Interval | None":
        """Intersection with a bounding domain (alias with intent)."""
        return self.intersect(domain)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        lb = "(" if self.low_open else "["
        rb = ")" if self.high_open else "]"
        lo = "-inf" if self.low is None else f"{self.low:g}"
        hi = "+inf" if self.high is None else f"{self.high:g}"
        return f"{lb}{lo}, {hi}{rb}"


def sort_key(interval: Interval) -> tuple:
    """Canonical ordering: by lower bound, then upper bound."""
    return interval._lkey + interval._ukey


class IntervalIndex:
    """A bisect-searchable ordering of a fragment-interval list.

    Greedy cover matching and pool lookups repeatedly ask "which intervals
    start at or before this point?" — a linear scan per step in the naive
    implementation.  This index sorts the intervals once by canonical key
    and answers the question with a binary search over the lower-bound
    keys, turning Algorithm 2 from O(n²) into O(n log n).

    ``positions`` are indexes into the sorted order; ``original_index``
    maps a position back to the caller's list.
    """

    __slots__ = ("intervals", "order", "lower_keys", "upper_keys")

    def __init__(self, intervals: list[Interval]):
        self.intervals = list(intervals)
        self.order = sorted(range(len(self.intervals)), key=lambda i: sort_key(self.intervals[i]))
        self.lower_keys = [self.intervals[i]._lower_key() for i in self.order]
        self.upper_keys = [self.intervals[i]._upper_key() for i in self.order]

    @classmethod
    def from_sorted(cls, intervals: list[Interval]) -> "IntervalIndex":
        """Index a list already in canonical :func:`sort_key` order.

        Skips the O(n log n) sort — the caller (an incrementally patched
        cover index) maintains the order with bisected insertions, so the
        resulting index is byte-identical to ``IntervalIndex(intervals)``
        (``sort_key`` is injective over distinct intervals, hence a sorted
        list has exactly one canonical order).
        """
        index = cls.__new__(cls)
        index.intervals = list(intervals)
        index.order = list(range(len(index.intervals)))
        index.lower_keys = [iv._lower_key() for iv in index.intervals]
        index.upper_keys = [iv._upper_key() for iv in index.intervals]
        return index

    def __len__(self) -> int:
        return len(self.order)

    def prefix_starting_at_or_before(self, lower_key: tuple[float, int]) -> int:
        """Number of intervals whose lower-bound key is ≤ ``lower_key``."""
        return bisect_right(self.lower_keys, lower_key)

    def at(self, position: int) -> Interval:
        """The interval at a sorted position."""
        return self.intervals[self.order[position]]

    def original_index(self, position: int) -> int:
        return self.order[position]


def total_covered_width(intervals: list[Interval]) -> float:
    """Width of the union of the intervals (overlaps counted once)."""
    if not intervals:
        return 0.0
    spans = sorted(((iv.lo, iv.hi) for iv in intervals))
    covered = 0.0
    cur_lo, cur_hi = spans[0]
    for lo, hi in spans[1:]:
        if lo > cur_hi:
            covered += cur_hi - cur_lo
            cur_lo, cur_hi = lo, hi
        else:
            cur_hi = max(cur_hi, hi)
    return covered + (cur_hi - cur_lo)
