"""Fragmentations of a view on an ordered attribute (Definitions 1 and 2).

A :class:`Fragmentation` is a set of intervals over an attribute's domain.
It is a *horizontal partition* when the intervals are pairwise disjoint
and cover the domain, and an *overlapping partitioning* when they cover
the domain but may overlap.  DeepSea's progressive refinement keeps every
resident partition at least an overlapping partitioning of the domain, so
any in-domain selection can be answered from fragments.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import PartitionError
from repro.partitioning.intervals import Interval, sort_key


def _upper_reach(covered: tuple[float, int] | None, interval: Interval) -> tuple[float, int]:
    """Max of the current coverage reach and an interval's upper key."""
    key = interval._upper_key()
    return key if covered is None or key > covered else covered


def _continues_coverage(covered: tuple[float, int], interval: Interval) -> bool:
    """True iff ``interval`` extends coverage without leaving a gap.

    ``covered`` is an upper key ``(v, flag)`` with ``flag`` 0 when ``v``
    itself is covered and -1 when it is excluded.  The interval continues
    coverage iff its lower region includes the next uncovered point.
    """
    v, flag = covered
    threshold = (v, 1 + flag)  # (v, 1) if v covered; (v, 0) if v excluded
    return interval._lower_key() <= threshold


def _overlaps_coverage(covered: tuple[float, int], interval: Interval) -> bool:
    """True iff ``interval`` contains at least one already-covered point."""
    v, flag = covered
    return interval._lower_key() <= (v, flag)


def union_covers(intervals: list[Interval], target: Interval) -> bool:
    """True iff the union of ``intervals`` covers every point of ``target``."""
    relevant = sorted(
        (iv for iv in intervals if iv.overlaps(target) or iv.adjacent_to(target)),
        key=sort_key,
    )
    lo_key = target._lower_key()
    # Coverage starts "just before" the target's first point.
    covered = (lo_key[0], -1 if lo_key[1] == 0 else 0)
    # Explanation: if target's low is closed, point lo itself is still
    # uncovered (flag -1 relative to lo); if open, lo is irrelevant (treat
    # as covered, flag 0) and coverage must continue strictly after it.
    for iv in relevant:
        if not _continues_coverage(covered, iv):
            break
        covered = _upper_reach(covered, iv)
        if covered >= target._upper_key():
            return True
    return covered >= target._upper_key()


def pairwise_disjoint(intervals: list[Interval]) -> bool:
    """True iff no two intervals share a point."""
    ordered = sorted(intervals, key=sort_key)
    covered: tuple[float, int] | None = None
    for iv in ordered:
        if covered is not None and _overlaps_coverage(covered, iv):
            return False
        covered = _upper_reach(covered, iv)
    return True


@dataclass(frozen=True)
class Fragmentation:
    """A fragmentation ``P_I(V.A)`` — a set of intervals over a domain."""

    attr: str
    domain: Interval
    intervals: tuple[Interval, ...]

    def __post_init__(self) -> None:
        if not self.domain.is_bounded():
            raise PartitionError("fragmentation domain must be bounded")
        # A fragmentation is a *set* of intervals (Definition 1): splits of
        # overlapping designs can propose a piece equal to an existing
        # fragment, so duplicates are collapsed here.
        deduped = tuple(sorted(dict.fromkeys(self.intervals), key=sort_key))
        if deduped != self.intervals:
            object.__setattr__(self, "intervals", deduped)
        for iv in self.intervals:
            clipped = iv.intersect(self.domain)
            if clipped is None:
                raise PartitionError(f"fragment {iv} lies outside domain {self.domain}")

    @classmethod
    def single(cls, attr: str, domain: Interval) -> "Fragmentation":
        """The trivial fragmentation ``{D(V, A)}`` used to seed refinement."""
        return cls(attr, domain, (domain,))

    # ------------------------------------------------------------------
    # Definition predicates
    # ------------------------------------------------------------------
    def covers_domain(self) -> bool:
        return union_covers(list(self.intervals), self.domain)

    def is_disjoint(self) -> bool:
        return pairwise_disjoint(list(self.intervals))

    def is_horizontal_partition(self) -> bool:
        """Definition 1: covers the domain and is pairwise disjoint."""
        return self.covers_domain() and self.is_disjoint()

    def is_overlapping_partitioning(self) -> bool:
        """Definition 2: covers the domain (overlap permitted)."""
        return self.covers_domain()

    # ------------------------------------------------------------------
    # Refinement
    # ------------------------------------------------------------------
    def replace(self, target: Interval, pieces: tuple[Interval, ...]) -> "Fragmentation":
        """Split ``target`` into ``pieces`` (must tile it exactly)."""
        if target not in self.intervals:
            raise PartitionError(f"{target} is not a fragment of this fragmentation")
        if not union_covers(list(pieces), target):
            raise PartitionError("pieces do not cover the fragment being replaced")
        if not pairwise_disjoint(list(pieces)):
            raise PartitionError("split pieces overlap")
        new = tuple(iv for iv in self.intervals if iv != target) + tuple(pieces)
        return Fragmentation(self.attr, self.domain, tuple(sorted(new, key=sort_key)))

    def add_overlapping(self, fragment: Interval) -> "Fragmentation":
        """Add a fragment that may overlap existing ones (Definition 2 path)."""
        new = tuple(sorted(self.intervals + (fragment,), key=sort_key))
        return Fragmentation(self.attr, self.domain, new)

    # ------------------------------------------------------------------
    def fragments_containing(self, point: float) -> list[Interval]:
        return [iv for iv in self.intervals if iv.contains_point(point)]

    def __len__(self) -> int:
        return len(self.intervals)
