"""Experiment harness: run system variants over workloads, collect series.

Every benchmark in ``benchmarks/`` is a thin wrapper around this module:
it builds an instance + workload, calls :func:`run_systems`, and renders
the paper-shaped table with :mod:`repro.bench.reporting`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.core.deepsea import DeepSea
from repro.core.reports import QueryReport
from repro.partitioning.intervals import Interval
from repro.query.algebra import Plan
from repro.workloads.bigbench import BigBenchInstance, generate_bigbench
from repro.workloads.sdss import (
    SDSSConfig,
    generate_sdss_log,
    sample_values_from_ranges,
)

SystemFactory = Callable[..., DeepSea]


@dataclass
class RunResult:
    """Everything recorded from running one system over one workload."""

    label: str
    reports: list[QueryReport]

    @property
    def total_s(self) -> float:
        return sum(r.total_s for r in self.reports)

    @property
    def execution_s(self) -> float:
        return sum(r.execution_s for r in self.reports)

    @property
    def creation_s(self) -> float:
        return sum(r.creation_s for r in self.reports)

    @property
    def per_query_s(self) -> list[float]:
        return [r.total_s for r in self.reports]

    @property
    def cumulative_s(self) -> list[float]:
        return list(np.cumsum(self.per_query_s))

    @property
    def map_tasks(self) -> int:
        return sum(
            r.execution_ledger.map_tasks + r.creation_ledger.map_tasks
            for r in self.reports
        )

    @property
    def reuse_count(self) -> int:
        return sum(1 for r in self.reports if r.reused_view)

    def recoup_point(self, baseline_per_query: list[float]) -> int | None:
        """First query index (1-based) where cumulative time drops below the
        baseline's — the Figure-7b "queries to recoup" metric."""
        mine = self.cumulative_s
        base = list(np.cumsum(baseline_per_query))
        for i in range(min(len(mine), len(base))):
            if mine[i] <= base[i]:
                return i + 1
        return None


def run_system(label: str, system: DeepSea, plans: list[Plan]) -> RunResult:
    """Execute a workload on one system instance."""
    return RunResult(label, [system.execute(p) for p in plans])


def run_systems(
    factories: dict[str, Callable[[], DeepSea]], plans: list[Plan]
) -> dict[str, RunResult]:
    """Run the same workload through several freshly built systems."""
    return {
        label: run_system(label, make(), plans) for label, make in factories.items()
    }


# ----------------------------------------------------------------------
# Shared experiment fixtures
# ----------------------------------------------------------------------
@dataclass
class SDSSFixture:
    """The §10.1 setup: SDSS log + SDSS-distributed BigBench instance."""

    instance: BigBenchInstance
    log: list[Interval]

    @property
    def catalog(self):
        return self.instance.catalog

    @property
    def domains(self):
        return self.instance.domains

    @property
    def item_domain(self) -> Interval:
        return self.instance.item_domain


_FIXTURE_CACHE: dict[tuple, SDSSFixture] = {}


def sdss_fixture(
    instance_gb: float = 500.0,
    *,
    log_queries: int = 10_000,
    seed: int = 1,
    item_domain: Interval = Interval.closed(0, 40_000),
) -> SDSSFixture:
    """Build (and cache) the SDSS-patterned BigBench instance."""
    key = (instance_gb, log_queries, seed, item_domain)
    if key not in _FIXTURE_CACHE:
        log = generate_sdss_log(SDSSConfig(n_queries=log_queries))
        rng = np.random.default_rng(seed)
        values = sample_values_from_ranges(log, 50_000, item_domain, rng)
        instance = generate_bigbench(
            instance_gb, seed=seed, item_domain=item_domain, item_sk_values=values
        )
        _FIXTURE_CACHE[key] = SDSSFixture(instance, log)
    return _FIXTURE_CACHE[key]


@dataclass
class UniformFixture:
    """Table-1 synthetic setup: uniform item distribution."""

    instance: BigBenchInstance

    @property
    def catalog(self):
        return self.instance.catalog

    @property
    def domains(self):
        return self.instance.domains

    @property
    def item_domain(self) -> Interval:
        return self.instance.item_domain


_UNIFORM_CACHE: dict[tuple, UniformFixture] = {}


def uniform_fixture(
    instance_gb: float = 100.0,
    *,
    seed: int = 1,
    item_domain: Interval = Interval.closed(0, 40_000),
) -> UniformFixture:
    key = (instance_gb, seed, item_domain)
    if key not in _UNIFORM_CACHE:
        instance = generate_bigbench(instance_gb, seed=seed, item_domain=item_domain)
        _UNIFORM_CACHE[key] = UniformFixture(instance)
    return _UNIFORM_CACHE[key]
