"""Experiment harness: run system variants over workloads, collect series.

Every benchmark in ``benchmarks/`` is a thin wrapper around this module:
it builds an instance + workload, calls :func:`run_systems`, and renders
the paper-shaped table with :mod:`repro.bench.reporting`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

import numpy as np

if TYPE_CHECKING:
    from repro.bench.profile import WallClockProfiler

from repro import caches
from repro.core.deepsea import DeepSea
from repro.core.reports import QueryReport
from repro.parallel import shared_cache

# Re-exported for compatibility: the prewarm pass lives with the worker
# pools it serves.
from repro.parallel.prewarm import prewarm_shared_caches  # noqa: F401
from repro.partitioning.intervals import Interval
from repro.query.algebra import Plan
from repro.workloads.bigbench import BigBenchInstance, generate_bigbench
from repro.workloads.sdss import (
    SDSSConfig,
    generate_sdss_log,
    sample_values_from_ranges,
)

SystemFactory = Callable[..., DeepSea]


@dataclass
class RunResult:
    """Everything recorded from running one system over one workload."""

    label: str
    reports: list[QueryReport]
    # Fault-injection event log (repro.faults), one line per fired fault
    # or completed recovery; empty for fault-free runs.
    fault_events: tuple[str, ...] = ()

    @property
    def total_s(self) -> float:
        return sum(r.total_s for r in self.reports)

    @property
    def fault_s(self) -> float:
        return sum(r.execution_ledger.fault_s + r.creation_ledger.fault_s for r in self.reports)

    @property
    def execution_s(self) -> float:
        return sum(r.execution_s for r in self.reports)

    @property
    def creation_s(self) -> float:
        return sum(r.creation_s for r in self.reports)

    @property
    def per_query_s(self) -> list[float]:
        return [r.total_s for r in self.reports]

    @property
    def cumulative_s(self) -> list[float]:
        return list(np.cumsum(self.per_query_s))

    @property
    def map_tasks(self) -> int:
        return sum(r.execution_ledger.map_tasks + r.creation_ledger.map_tasks for r in self.reports)

    @property
    def reuse_count(self) -> int:
        return sum(1 for r in self.reports if r.reused_view)

    def recoup_point(self, baseline_per_query: list[float]) -> int | None:
        """First query index (1-based) where cumulative time drops below the
        baseline's — the Figure-7b "queries to recoup" metric."""
        mine = self.cumulative_s
        base = list(np.cumsum(baseline_per_query))
        for i in range(min(len(mine), len(base))):
            if mine[i] <= base[i]:
                return i + 1
        return None


@dataclass
class WorkerTelemetry:
    """What one fan-out unit observed about its own process."""

    pid: int
    profile: dict | None
    caches: dict


def run_system(
    label: str,
    system: DeepSea,
    plans: list[Plan],
    profiler: "WallClockProfiler | None" = None,
) -> RunResult:
    """Execute a workload on one system instance.

    An optional :class:`~repro.bench.profile.WallClockProfiler` is
    attached for the duration of the run, charging real seconds to the
    matching / selection / execution / materialization stages.  Profiling
    never touches the simulated ledgers.
    """
    if profiler is not None:
        system.profiler = profiler
    try:
        reports = [system.execute(p) for p in plans]
        events = system.faults.event_log() if system.faults is not None else ()
        return RunResult(label, reports, events)
    finally:
        if profiler is not None:
            system.profiler = None




def run_systems(
    factories: dict[str, Callable[[], DeepSea]],
    plans: list[Plan],
    profilers: "dict[str, WallClockProfiler] | None" = None,
    *,
    workers: int = 0,
    telemetry: "dict[str, WorkerTelemetry] | None" = None,
    scheduler: str = "static",
    stateless: "tuple[str, ...]" = (),
    worker_stats: "list[dict] | None" = None,
    catalog=None,
    shared: "shared_cache.SharedCacheServer | None" = None,
    shared_scope: tuple = (),
) -> dict[str, RunResult]:
    """Run the same workload through several freshly built systems.

    With ``workers >= 2`` each (system × workload) run becomes one task
    of a forked process pool (:func:`repro.parallel.pool.fan_out`): every
    worker starts cache-cold (per-worker ``clear_all_caches`` isolation)
    and results merge back in the factories' dict order, so ledgers and
    result tables are byte-identical to a serial run for any worker
    count.  ``workers <= 1`` is the unchanged serial path.

    ``scheduler="steal"`` (with ``workers >= 2``) replaces the static
    per-system split with the work-stealing pool
    (:func:`repro.parallel.pool.steal_map`): persistent *warm-forked*
    workers pull run units off a shared deque, and any system named in
    ``stateless`` — one whose per-query outputs don't depend on earlier
    queries, like the H baseline — is cut into contiguous query slices
    so its work load-balances across the pool instead of pinning one
    worker.  Results merge back identically (slices concatenate in query
    order); ``worker_stats``, when given, collects one per-worker dict of
    cache-counter deltas for the profile JSON.  With ``catalog`` supplied
    the parent runs :func:`prewarm_shared_caches` before forking, so the
    warm workers inherit the plan memos and base-table join indexes
    instead of each rebuilding them.

    ``profilers`` maps labels to :class:`WallClockProfiler` instances; in
    parallel mode each task profiles in its own process and the worker's
    totals are merged into the caller's profiler afterwards.  When a
    ``telemetry`` dict is supplied it is filled with one
    :class:`WorkerTelemetry` per label (worker pid, profile, cache
    counters) — the per-worker breakdown of ``python -m repro profile``
    (static/serial schedulers only; the steal pool reports per worker,
    not per label, via ``worker_stats``).

    ``shared`` attaches a cross-worker shared cache tier
    (:mod:`repro.parallel.shared_cache`): the pool schedulers serve its
    frames from the parent loop, and each task's pool is stamped with a
    shared-cache identity scoped by ``(shared_scope, label, slice)`` so
    entries from one run unit validate only against replays of exactly
    that unit's deterministic build.  Callers must not reuse one server
    across run_systems calls whose labels name *different* configurations
    — extend ``shared_scope`` with the config instead (the CLI passes its
    full parameter tuple).
    """
    profilers = profilers or {}
    labels = list(factories)
    if scheduler not in ("static", "steal"):
        raise ValueError(f"unknown scheduler: {scheduler!r}")

    def stamp_pool(system: DeepSea, label: str, start: int, stop: int) -> DeepSea:
        pool = getattr(system, "pool", None)
        if pool is not None and shared is not None:
            pool.shared_ident = ("run_systems", shared_scope, label, start, stop)
        return system
    if scheduler == "steal" and workers >= 2 and len(labels) >= 1:
        from repro.bench.profile import WallClockProfiler
        from repro.parallel.pool import steal_map

        if catalog is not None:
            prewarm_shared_caches(plans, catalog)

        def whole_task(label: str, make: Callable[[], DeepSea], profiled: bool) -> Callable:
            def run() -> "tuple[list[QueryReport], WallClockProfiler | None, tuple]":
                prof = WallClockProfiler() if profiled else None
                system = stamp_pool(make(), label, 0, len(plans))
                result = run_system(label, system, plans, prof)
                return result.reports, prof, result.fault_events

            return run

        def slice_task(
            label: str, make: Callable[[], DeepSea], profiled: bool, start: int, stop: int
        ) -> Callable:
            def run() -> "tuple[list[QueryReport], WallClockProfiler | None, tuple]":
                prof = WallClockProfiler() if profiled else None
                system = stamp_pool(make(), label, start, stop)
                # Clock offset keeps slice report indexes identical to the
                # same queries inside a whole serial run.
                system.clock = start
                result = run_system(label, system, plans[start:stop], prof)
                return result.reports, prof, result.fault_events

            return run

        n_slices = max(2, workers)
        units: "list[tuple[str, int]]" = []  # (label, slice ordinal)
        thunks: list[Callable] = []
        for label, make in factories.items():
            profiled = label in profilers
            if label in stateless and len(plans) >= 2 * n_slices:
                bounds = np.linspace(0, len(plans), n_slices + 1).astype(int)
                for ordinal, (start, stop) in enumerate(zip(bounds[:-1], bounds[1:])):
                    units.append((label, ordinal))
                    thunks.append(slice_task(label, make, profiled, int(start), int(stop)))
            else:
                units.append((label, 0))
                thunks.append(whole_task(label, make, profiled))
        outputs = steal_map(
            thunks, workers, chunk_size=1, worker_stats=worker_stats, shared=shared
        )
        merged_reports: dict[str, list[QueryReport]] = {label: [] for label in labels}
        merged_events: dict[str, tuple] = {label: () for label in labels}
        for (label, _), (reports, prof, events) in zip(units, outputs):
            merged_reports[label].extend(reports)  # units are in slice order
            merged_events[label] = merged_events[label] + tuple(events)
            if prof is not None:
                profilers[label].merge(prof)
        return {
            label: RunResult(label, merged_reports[label], merged_events[label])
            for label in labels
        }
    if workers >= 2 and len(labels) > 1:
        from repro.bench.profile import WallClockProfiler
        from repro.parallel.pool import fan_out

        def task(label: str, make: Callable[[], DeepSea]) -> Callable:
            profiled = label in profilers

            def run() -> tuple[RunResult, "WallClockProfiler | None", WorkerTelemetry]:
                import os

                from repro.caches import cache_stats

                prof = WallClockProfiler() if profiled else None
                system = stamp_pool(make(), label, 0, len(plans))
                result = run_system(label, system, plans, prof)
                info = WorkerTelemetry(os.getpid(), prof.report() if prof else None, cache_stats())
                return result, prof, info

            return run

        outputs = fan_out([task(l, m) for l, m in factories.items()], workers, shared=shared)
        results: dict[str, RunResult] = {}
        for label, (result, prof, info) in zip(labels, outputs):
            if prof is not None:
                profilers[label].merge(prof)
            if telemetry is not None:
                telemetry[label] = info
            results[label] = result
        return results

    results = {}
    prior_client = (
        shared_cache.install_client(shared_cache.InProcessClient(shared))
        if shared is not None
        else None
    )
    try:
        for label, make in factories.items():
            system = stamp_pool(make(), label, 0, len(plans))
            results[label] = run_system(label, system, plans, profilers.get(label))
            if telemetry is not None:
                import os

                from repro.caches import cache_stats

                prof = profilers.get(label)
                telemetry[label] = WorkerTelemetry(
                    os.getpid(), prof.report() if prof else None, cache_stats()
                )
    finally:
        if shared is not None:
            shared_cache.install_client(prior_client)
    return results


# ----------------------------------------------------------------------
# Shared experiment fixtures
# ----------------------------------------------------------------------
@dataclass
class SDSSFixture:
    """The §10.1 setup: SDSS log + SDSS-distributed BigBench instance."""

    instance: BigBenchInstance
    log: list[Interval]

    @property
    def catalog(self):
        return self.instance.catalog

    @property
    def domains(self):
        return self.instance.domains

    @property
    def item_domain(self) -> Interval:
        return self.instance.item_domain


# Fixture caches are bounded: a fixture holds a full scaled BigBench
# instance (hundreds of thousands of rows), and a long session sweeping
# scales (Table 1, Figure 7a) would otherwise pin every instance it ever
# built.  Insertion order is eviction order (plain dict FIFO).
_MAX_CACHED_FIXTURES = 4

_FIXTURE_CACHE: dict[tuple, SDSSFixture] = {}


def _admit_fixture(cache: dict, key: tuple, value) -> None:
    while len(cache) >= _MAX_CACHED_FIXTURES:
        cache.pop(next(iter(cache)))
    cache[key] = value


def sdss_fixture(
    instance_gb: float = 500.0,
    *,
    log_queries: int = 10_000,
    seed: int = 1,
    item_domain: Interval = Interval.closed(0, 40_000),
) -> SDSSFixture:
    """Build (and cache) the SDSS-patterned BigBench instance."""
    key = (instance_gb, log_queries, seed, item_domain)
    if key not in _FIXTURE_CACHE:
        log = generate_sdss_log(SDSSConfig(n_queries=log_queries))
        rng = np.random.default_rng(seed)
        values = sample_values_from_ranges(log, 50_000, item_domain, rng)
        instance = generate_bigbench(
            instance_gb, seed=seed, item_domain=item_domain, item_sk_values=values
        )
        # Content-stable identity for the cross-worker shared cache tier:
        # any process building this fixture from the same key holds
        # byte-identical tables (seeded generation), so entries computed
        # against one build are valid against every other.
        instance.catalog.shared_ident = ("sdss",) + key
        _admit_fixture(_FIXTURE_CACHE, key, SDSSFixture(instance, log))
    return _FIXTURE_CACHE[key]


@dataclass
class UniformFixture:
    """Table-1 synthetic setup: uniform item distribution."""

    instance: BigBenchInstance

    @property
    def catalog(self):
        return self.instance.catalog

    @property
    def domains(self):
        return self.instance.domains

    @property
    def item_domain(self) -> Interval:
        return self.instance.item_domain


_UNIFORM_CACHE: dict[tuple, UniformFixture] = {}


def uniform_fixture(
    instance_gb: float = 100.0,
    *,
    seed: int = 1,
    item_domain: Interval = Interval.closed(0, 40_000),
) -> UniformFixture:
    key = (instance_gb, seed, item_domain)
    if key not in _UNIFORM_CACHE:
        instance = generate_bigbench(instance_gb, seed=seed, item_domain=item_domain)
        instance.catalog.shared_ident = ("uniform",) + key
        _admit_fixture(_UNIFORM_CACHE, key, UniformFixture(instance))
    return _UNIFORM_CACHE[key]


def _clear_fixture_caches() -> None:
    _FIXTURE_CACHE.clear()
    _UNIFORM_CACHE.clear()


def _fixture_cache_stats() -> dict:
    return {
        "hits": 0,
        "misses": 0,
        "evictions": 0,
        "entries": len(_FIXTURE_CACHE) + len(_UNIFORM_CACHE),
    }


caches.register_cache("bench.harness.fixtures", _clear_fixture_caches, _fixture_cache_stats)


def clear_caches() -> None:
    """Reset every cross-query cache layer in the process.

    Covers the benchmark fixture caches plus all engine- and query-layer
    acceleration caches (join indexes and probes, signatures, plan
    analysis, pushdown, matcher memo).  Each of those registers itself
    with :mod:`repro.caches` at import time — this function simply clears
    the registry, so there is exactly one list of caches in the codebase
    and a new cache cannot be forgotten here or in the parallel runner's
    worker startup (which calls the same registry).  Every registered
    cache is semantically transparent, so clearing is never required for
    correctness — this exists for memory-bounded sessions and for tests
    that compare cold vs warm behaviour.
    """
    caches.clear_all_caches()
