"""Rendering paper-shaped result tables and series.

Benchmarks print their results through these helpers so every figure's
reproduction has a uniform, diffable text form (also recorded in
``EXPERIMENTS.md``).
"""

from __future__ import annotations

from typing import Iterable, Sequence


def format_table(headers: Sequence[str], rows: Iterable[Sequence], title: str | None = None) -> str:
    """A fixed-width text table."""
    str_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(label: str, values: Sequence[float], every: int = 1, unit: str = "s") -> str:
    """A compact one-line rendering of a cumulative/per-query series."""
    shown = values[::every]
    body = ", ".join(f"{v:,.0f}" for v in shown)
    return f"{label} [{unit}]: {body}"


def _fmt(cell) -> str:
    if isinstance(cell, float):
        if abs(cell) >= 1000:
            return f"{cell:,.0f}"
        if abs(cell) >= 1:
            return f"{cell:.1f}"
        return f"{cell:.3f}"
    return str(cell)


def normalize(values: Sequence[float], baseline: float) -> list[float]:
    """Values as fractions of a baseline (the paper's "% of Hive" axes)."""
    if baseline == 0:
        raise ZeroDivisionError("baseline must be non-zero")
    return [v / baseline for v in values]
