"""Ingest benchmark: append scenarios proving delta maintenance correct.

Three micro-batch append scenarios drive ``python -m repro ingest-bench``
(the fig-10-style adaptation view of incremental ingest):

* **drip** — a steady trickle: a small batch every other query, rows
  uniform over the item domain, queries hammering one hot range;
* **burst** — a flash crowd: no appends for the first 40% of the run,
  then a batch *every* query (3x the drip size) concentrated in a narrow
  item range, then quiet again;
* **drift** — a moving hot spot: both the query ranges and the appended
  rows track a window that slides across the item domain over the run.

Each scenario runs in two modes over identical inputs: ``delta`` (the
:class:`~repro.storage.ingest.DeltaMaintainer` routes batch rows to
affected fragments through the interval structure) and ``rebuild`` (the
always-correct recompute-from-base fallback, forced).  The harness
verifies, after **every** batch, that each resident pool entry's payload
is byte-identical to a from-scratch recompute of its view over the grown
base table — and, per query, that the system's answer matches a direct
base-table evaluation (the stale-read probe: a cache tier serving a
pre-append entry would diverge here).  Per-query answer digests must
match across the two modes, which is the end-to-end proof that delta
maintenance never changes an answer while charging less ``maint_s``.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

import numpy as np

from repro.engine.catalog import Catalog
from repro.engine.executor import ExecutionContext, Executor
from repro.engine.table import Table
from repro.partitioning.intervals import Interval
from repro.query.builder import Q

SCENARIOS = ("drip", "burst", "drift")
MODES = ("delta", "rebuild")

# Fraction of the item domain one query's selection range spans.
_QUERY_WIDTH = 0.06
# Appended rows per drip/drift batch (burst batches are 3x).
_ROWS_PER_BATCH = 400


@dataclass(frozen=True)
class BatchSpec:
    """One scheduled micro-batch: apply before query ``at``.

    ``offset`` is the cumulative row count of earlier batches, so the
    appended ``ss_id`` sequence continues the base table's without gaps
    or collisions no matter how the schedule is replayed.
    """

    at: int
    nrows: int
    lo: int
    hi: int
    offset: int
    seed: int

    def rows(self, id0: int) -> dict:
        """Materialize the batch rows (deterministic per spec)."""
        rng = np.random.default_rng([self.seed, self.at, self.nrows])
        n = self.nrows
        return {
            "ss_id": np.arange(id0 + self.offset, id0 + self.offset + n),
            "ss_item_sk": rng.integers(self.lo, self.hi + 1, n),
            "ss_customer_sk": rng.integers(0, 1_000, n),
            "ss_quantity": rng.integers(1, 12, n),
            "ss_sales_price": rng.integers(1, 1_000, n),
            "ss_payload": np.zeros(n, dtype=np.int64),
        }


def scenario_schedule(
    scenario: str,
    n_queries: int,
    domain: Interval,
    seed: int = 1,
    rows_per_batch: int = _ROWS_PER_BATCH,
) -> "tuple[list[tuple[int, int]], list[BatchSpec]]":
    """Build one scenario: query ranges plus the batch schedule.

    Everything is a deterministic function of the arguments — the
    determinism harness replays a schedule across worker counts and
    schedulers and expects bit-identical ledgers.
    """
    if scenario not in SCENARIOS:
        raise ValueError(f"unknown ingest scenario: {scenario!r}")
    rng = np.random.default_rng([seed, len(scenario), n_queries])
    span = domain.hi - domain.lo
    width = span * _QUERY_WIDTH

    def centre(i: int) -> float:
        jitter = float(rng.uniform(-0.03, 0.03)) * span
        if scenario == "drift":
            frac = 0.2 + 0.6 * (i / max(1, n_queries - 1))
        elif scenario == "burst":
            frac = 0.5
        else:  # drip
            frac = 0.35
        return domain.lo + frac * span + jitter

    ranges: list[tuple[int, int]] = []
    for i in range(n_queries):
        mid = centre(i)
        lo = max(domain.lo, mid - width / 2)
        hi = min(domain.hi, mid + width / 2)
        ranges.append((int(lo), int(hi)))

    batches: list[BatchSpec] = []
    offset = 0
    for i in range(n_queries):
        if scenario == "burst":
            if not (int(n_queries * 0.4) <= i < int(n_queries * 0.6)):
                continue
            nrows = 3 * rows_per_batch
            lo = int(domain.lo + 0.45 * span)
            hi = int(domain.lo + 0.55 * span)
        elif scenario == "drift":
            if i % 2 == 0:
                continue
            nrows = rows_per_batch
            frac = 0.2 + 0.6 * (i / max(1, n_queries - 1))
            lo = int(max(domain.lo, domain.lo + (frac - 0.1) * span))
            hi = int(min(domain.hi, domain.lo + (frac + 0.1) * span))
        else:  # drip: uniform appends over the whole domain
            if i % 2 == 0:
                continue
            nrows = rows_per_batch
            lo, hi = int(domain.lo), int(domain.hi)
        batches.append(BatchSpec(i, nrows, lo, hi, offset, seed))
        offset += nrows
    return ranges, batches


def scenario_plans(ranges: "list[tuple[int, int]]"):
    """Delta-able single-table plans over the scenario's query ranges."""
    return [
        Q("store_sales")
        .select("ss_id", "ss_item_sk", "ss_quantity", "ss_sales_price")
        .where_between("ss_item_sk", lo, hi)
        .plan
        for lo, hi in ranges
    ]


# ----------------------------------------------------------------------
# Correctness probes
# ----------------------------------------------------------------------
def table_digest(table: Table) -> str:
    """Row-order-insensitive content digest (rows stay associated)."""
    names = table.schema.names
    cols = [np.asarray(table.column(n)) for n in names]
    order = np.lexsort(tuple(reversed(cols))) if cols else np.array([], dtype=np.int64)
    h = hashlib.sha256()
    for name, col in zip(names, cols):
        h.update(name.encode())
        h.update(np.ascontiguousarray(col[order]).tobytes())
    return h.hexdigest()


def _recompute(plan, catalog: Catalog, cluster) -> Table:
    """Evaluate ``plan`` directly over base tables, no caches, no pool."""
    executor = Executor(ExecutionContext(catalog, None, cluster))
    return executor.execute(plan, None, use_cache=False).table


def verify_pool_identity(system) -> "tuple[int, list[str]]":
    """Check every resident entry's payload against a full recompute.

    Byte-exact and *order*-exact: a delta patch appends the batch's view
    rows after the old payload, which is precisely where a from-scratch
    recompute of the view over the grown table puts them.  Returns
    ``(entries_checked, problems)``.
    """
    pool = system.pool
    problems: list[str] = []
    checked = 0
    for view_id in pool.resident_view_ids():
        plan = pool.definition(view_id).plan
        expected = _recompute(plan, system.catalog, system.cluster)
        entries = []
        whole = pool.whole_view_entry(view_id)
        if whole is not None:
            entries.append((None, whole))
        for attr in pool.partition_attrs(view_id):
            entries.extend((attr, e) for e in pool.fragments_of(view_id, attr))
        for attr, entry in entries:
            want = (
                expected
                if attr is None
                else expected.filter(entry.key.interval.mask(expected.column(attr)))
            )
            got = pool.hdfs.peek(entry.path)
            checked += 1
            if got.schema.names != want.schema.names or got.nrows != want.nrows:
                problems.append(
                    f"{view_id}/{entry.fragment_id}: shape "
                    f"{got.nrows}x{len(got.schema.names)} != "
                    f"{want.nrows}x{len(want.schema.names)}"
                )
                continue
            for name in want.schema.names:
                if not np.array_equal(got.column(name), want.column(name)):
                    problems.append(
                        f"{view_id}/{entry.fragment_id}: column {name} diverged"
                    )
                    break
    return checked, problems


# ----------------------------------------------------------------------
# Scenario runner
# ----------------------------------------------------------------------
def run_scenario(
    scenario: str,
    mode: str = "delta",
    *,
    queries: int = 40,
    instance_gb: float = 2.0,
    seed: int = 1,
    pool_fraction: float = 0.5,
    probe_answers: bool = True,
) -> dict:
    """Run one (scenario x mode) unit and return its report dict."""
    from repro.baselines import deepsea
    from repro.bench.harness import uniform_fixture

    if mode not in MODES:
        raise ValueError(f"unknown ingest mode: {mode!r}")
    fx = uniform_fixture(instance_gb)
    # Fork: ingest mutates the catalog, and fixtures are cached/shared.
    catalog = fx.catalog.fork(("ingest-bench", scenario, mode, queries, seed))
    domains = dict(fx.domains)
    domains["ss_item_sk"] = fx.item_domain
    system = deepsea(
        catalog,
        domains=domains,
        smax_bytes=catalog.total_size_bytes * pool_fraction,
    )
    if mode == "rebuild":
        system.maintenance.force_rebuild = True

    ranges, batches = scenario_schedule(scenario, queries, fx.item_domain, seed)
    plans = scenario_plans(ranges)
    by_index: dict[int, list[BatchSpec]] = {}
    for spec in batches:
        by_index.setdefault(spec.at, []).append(spec)
    id0 = catalog.get("store_sales").nrows

    per_query_s: list[float] = []
    per_query_maint_s: list[float] = []
    digests: list[str] = []
    identity_checks = 0
    identity_problems: list[str] = []
    stale_reads = 0
    rows_ingested = 0
    reports = []
    for i, plan in enumerate(plans):
        for spec in by_index.get(i, ()):
            system.ingest("store_sales", spec.rows(id0))
            rows_ingested += spec.nrows
            checked, problems = verify_pool_identity(system)
            identity_checks += checked
            identity_problems.extend(problems[:3])
        report = system.execute(plan)
        reports.append(report)
        per_query_s.append(report.total_s)
        per_query_maint_s.append(report.creation_ledger.maint_s)
        digest = table_digest(report.result)
        digests.append(digest)
        if probe_answers:
            truth = _recompute(plan, catalog, system.cluster)
            if table_digest(truth) != digest:
                stale_reads += 1

    ingest_reports = system.maintenance.reports
    merged = {
        "maint_s": sum(r.maint_s for r in ingest_reports),
        "fragments_patched": sum(r.fragments_patched for r in ingest_reports),
        "fragments_rebuilt": sum(r.fragments_rebuilt for r in ingest_reports),
        "fragments_dropped": sum(r.fragments_dropped for r in ingest_reports),
        "delta_rows_routed": sum(r.ledger.delta_rows_routed for r in ingest_reports),
        "delta_rows_applied": sum(r.ledger.delta_rows_applied for r in ingest_reports),
    }
    return {
        "scenario": scenario,
        "mode": mode,
        "queries": queries,
        "instance_gb": instance_gb,
        "seed": seed,
        "batches": len(ingest_reports),
        "rows_ingested": rows_ingested,
        **merged,
        "views_delta": sorted({v for r in ingest_reports for v in r.views_delta}),
        "views_rebuilt": sorted({v for r in ingest_reports for v in r.views_rebuilt}),
        "identity_checks": identity_checks,
        "identity_ok": not identity_problems,
        "identity_problems": identity_problems[:10],
        "stale_reads": stale_reads,
        "total_s": sum(per_query_s),
        "per_query_s": per_query_s,
        "per_query_maint_s": per_query_maint_s,
        "cumulative_s": list(np.cumsum(per_query_s)),
        "reuse_count": sum(1 for r in reports if r.reused_view),
        "answer_digest": hashlib.sha256("".join(digests).encode()).hexdigest(),
    }


def gate_problems(results: "list[dict]") -> list[str]:
    """The ingest invariants CI enforces over a set of scenario runs."""
    problems: list[str] = []
    by_scenario: dict[str, dict[str, dict]] = {}
    for res in results:
        name = f"{res['scenario']}/{res['mode']}"
        by_scenario.setdefault(res["scenario"], {})[res["mode"]] = res
        if res["batches"] == 0:
            problems.append(f"{name}: no batches ran")
        if not res["identity_ok"]:
            problems.append(
                f"{name}: fragment payloads diverged from recompute: "
                + "; ".join(res["identity_problems"][:3])
            )
        if res["stale_reads"]:
            problems.append(f"{name}: {res['stale_reads']} stale cache read(s)")
        if res["maint_s"] <= 0.0:
            problems.append(f"{name}: maint_s not charged")
        if res["mode"] == "delta" and res["fragments_patched"] < 1:
            problems.append(f"{name}: no fragment was delta-patched")
    for scenario, modes in by_scenario.items():
        if "delta" in modes and "rebuild" in modes:
            if modes["delta"]["answer_digest"] != modes["rebuild"]["answer_digest"]:
                problems.append(
                    f"{scenario}: delta and rebuild answers diverged"
                )
    return problems


def run_ingest_bench(
    scenarios: "tuple[str, ...]" = SCENARIOS,
    *,
    modes: "tuple[str, ...]" = MODES,
    queries: int = 40,
    instance_gb: float = 2.0,
    seed: int = 1,
    workers: int = 0,
) -> dict:
    """Run (scenario x mode) units, serially or over a process pool."""
    units = [(s, m) for s in scenarios for m in modes]

    def unit(s: str, m: str):
        return lambda: run_scenario(
            s, m, queries=queries, instance_gb=instance_gb, seed=seed
        )

    if workers >= 2 and len(units) > 1:
        from repro.parallel.pool import fan_out

        results = list(fan_out([unit(s, m) for s, m in units], workers))
    else:
        results = [unit(s, m)() for s, m in units]
    problems = gate_problems(results)
    return {
        "queries": queries,
        "instance_gb": instance_gb,
        "seed": seed,
        "workers": workers,
        "results": results,
        "problems": problems,
        "ok": not problems,
    }
