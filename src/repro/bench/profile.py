"""Wall-clock profiling of the reproduction's own runtime.

Everything else in ``repro.bench`` measures *simulated* cluster seconds —
the paper's metric, accumulated in :class:`~repro.engine.cost.CostLedger`
and byte-stable across refactors.  This module measures the opposite
axis: how much *real* time the Python engine spends per query-processing
stage, so optimization work on the hot paths (index caches, fragment
assembly, signature memos) can be quantified and guarded by CI.

A :class:`WallClockProfiler` is attached to a
:class:`~repro.core.deepsea.DeepSea` instance (``system.profiler = p``)
and charges each query's time to one of four stages:

* ``matching`` — candidate registration, view matching, statistics
  update, and rewriting construction / cost estimation;
* ``selection`` — choosing view creations and partition refinements;
* ``execution`` — running the (possibly rewritten) physical plan;
* ``materialization`` — writing views / fragments and applying
  refinements and merges.

With no profiler attached the hooks are shared ``nullcontext`` objects —
the hot path pays one attribute read per stage.

Reports are plain dictionaries (JSON-serializable).  The checked-in
``BENCH_wallclock.json`` at the repository root records the speedup of
the acceleration layer against the pre-optimization seed;
:func:`check_against_baseline` is the CI gate that fails when a change
regresses wall-clock by more than the allowed factor.
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path

STAGES = ("matching", "selection", "execution", "materialization")


@dataclass
class WallClockProfiler:
    """Accumulates real seconds per query-processing stage."""

    seconds: dict[str, float] = field(default_factory=dict)
    calls: dict[str, int] = field(default_factory=dict)
    queries: int = 0

    @contextmanager
    def stage(self, name: str):
        """Charge the wrapped block's wall time to ``name``."""
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self.seconds[name] = self.seconds.get(name, 0.0) + elapsed
            self.calls[name] = self.calls.get(name, 0) + 1

    @property
    def total_seconds(self) -> float:
        return sum(self.seconds.values())

    def report(self) -> dict:
        """Machine-readable summary (stable key order for diffs)."""
        stages = {}
        for name in sorted(self.seconds):
            stages[name] = {
                "seconds": self.seconds[name],
                "calls": self.calls.get(name, 0),
            }
        return {
            "queries": self.queries,
            "total_seconds": self.total_seconds,
            "stages": stages,
        }

    def merge(self, other: "WallClockProfiler") -> None:
        """Fold another profiler's totals into this one (multi-system runs)."""
        for name, secs in other.seconds.items():
            self.seconds[name] = self.seconds.get(name, 0.0) + secs
        for name, n in other.calls.items():
            self.calls[name] = self.calls.get(name, 0) + n
        self.queries += other.queries


def write_report(path: str | Path, report: dict) -> None:
    Path(path).write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")


def load_report(path: str | Path) -> dict:
    return json.loads(Path(path).read_text())


def check_against_baseline(
    measured_seconds: float, baseline: dict, max_slowdown: float = 2.0
) -> tuple[bool, str]:
    """CI gate: is ``measured_seconds`` within ``max_slowdown`` × baseline?

    ``baseline`` is a report produced by :func:`write_report` (or the
    ``wall_seconds`` entry of ``BENCH_wallclock.json``).  Wall-clock on CI
    runners is noisy and machine-dependent, hence the generous default
    factor — the gate exists to catch order-of-magnitude regressions
    (e.g. a cache accidentally disabled), not percent-level drift.
    """
    base = baseline.get("total_seconds") or baseline.get("wall_seconds")
    if not base:
        return False, "baseline has no total_seconds/wall_seconds entry"
    limit = max_slowdown * float(base)
    ok = measured_seconds <= limit
    verdict = "OK" if ok else "REGRESSION"
    return ok, (
        f"{verdict}: measured {measured_seconds:.2f}s vs baseline "
        f"{float(base):.2f}s (limit {limit:.2f}s = {max_slowdown:g}x)"
    )


# Stages whose baseline share is below this many seconds are not gated
# individually: a 10 ms stage doubling is scheduler noise, not a
# regression, and per-phase verdicts must stay actionable.
_MIN_GATED_STAGE_SECONDS = 0.05


def check_report_against_baseline(
    report: dict, baseline: dict, max_slowdown: float = 2.0
) -> tuple[bool, str]:
    """Per-phase CI gate with an actionable message.

    Gates the report's measured total *and* every profiled stage large
    enough to measure against ``max_slowdown`` × the baseline's matching
    entry.  The returned message carries one verdict line per gated
    phase, so a tripped CI job names the regressed phase and both numbers
    instead of dumping two JSON blobs to diff by hand.
    """
    base_total = baseline.get("total_seconds") or baseline.get("wall_seconds")
    if not base_total:
        return False, "FAIL: baseline has no total_seconds/wall_seconds entry"
    lines: list[str] = []
    failed: list[str] = []

    def gate(name: str, measured: float, base: float) -> None:
        limit = max_slowdown * base
        ok = measured <= limit
        if not ok:
            failed.append(name)
        lines.append(
            f"  {'OK        ' if ok else 'REGRESSION'} {name}: "
            f"measured {measured:.2f}s vs baseline {base:.2f}s "
            f"(limit {limit:.2f}s = {max_slowdown:g}x)"
        )

    gate("total", float(report.get("total_seconds", 0.0)), float(base_total))
    measured_stages = report.get("stages", {})
    for name, entry in sorted(baseline.get("stages", {}).items()):
        base_s = float(entry.get("seconds", 0.0))
        if base_s < _MIN_GATED_STAGE_SECONDS:
            continue
        measured_s = float(measured_stages.get(name, {}).get("seconds", 0.0))
        gate(f"stage {name}", measured_s, base_s)

    if failed:
        head = (
            f"REGRESSION in {len(failed)} phase(s): {', '.join(failed)} "
            f"(allowed slowdown {max_slowdown:g}x)"
        )
    else:
        head = f"OK: all phases within {max_slowdown:g}x of baseline"
    return not failed, "\n".join([head, *lines])
