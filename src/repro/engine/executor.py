"""Plan execution.

The executor evaluates a logical plan against the catalog (base tables)
and the materialized-view pool (``MaterializedScan`` leaves), returning the
result :class:`~repro.engine.table.Table` and charging simulated time to a
:class:`~repro.engine.cost.CostLedger`:

* base-table and fragment scans charge read time (one map task per file /
  HDFS block);
* every join and aggregation charges one MapReduce job overhead plus a
  shuffle of its output;
* every *job boundary* writes its output to HDFS — MapReduce materializes
  intermediate results between jobs, which is exactly what DeepSea
  harvests as free view payloads (§2).  A job boundary is a join or
  aggregate, folded together with the projection chain directly above it
  (Hive applies projections inside the producing job);
* plans with no join/aggregate still cost one job (a map-only job).

All operators are numpy-vectorized; queries over the few-hundred-thousand
row scaled instances used in the benchmarks execute in milliseconds of
real time while reporting simulated cluster seconds.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.engine.catalog import Catalog
from repro.engine.cost import ClusterSpec, CostLedger
from repro.engine.indexes import join_probe
from repro.engine.schema import Column, Schema
from repro.engine.table import Table
from repro.engine.types import ColumnKind
from repro.errors import PlanError, SchemaError
from repro.query.algebra import (
    Aggregate,
    AggSpec,
    Join,
    MaterializedScan,
    Plan,
    Project,
    Relation,
    Select,
)
from repro.query.analysis import analyze_plan
from repro.query.predicates import conjunction_mask
from repro.storage.pool import MaterializedViewPool


@dataclass
class ExecutionContext:
    """Everything a plan needs to run."""

    catalog: Catalog
    pool: MaterializedViewPool | None = None
    cluster: ClusterSpec = field(default_factory=ClusterSpec)


@dataclass
class ExecutionResult:
    """A query answer plus its simulated cost."""

    table: Table
    ledger: CostLedger

    @property
    def elapsed_s(self) -> float:
        return self.ledger.total_seconds


class Executor:
    """Evaluates logical plans."""

    def __init__(self, context: ExecutionContext):
        self.context = context
        self._capture_targets: set[Plan] = set()
        self._captured: dict[Plan, Table] = {}
        self._boundaries: frozenset[Plan] = frozenset()

    # ------------------------------------------------------------------
    def execute(self, plan: Plan, ledger: CostLedger | None = None) -> ExecutionResult:
        """Run ``plan`` and return its result table and cost ledger."""
        ledger = ledger if ledger is not None else CostLedger(self.context.cluster)
        analysis = analyze_plan(plan)  # boundaries + job count, one traversal
        self._boundaries = analysis.boundaries
        table = self._eval(plan, ledger)
        if analysis.job_ops == 0:
            ledger.charge_jobs(1)
        return ExecutionResult(table, ledger)

    def execute_with_capture(
        self,
        plan: Plan,
        targets: list[Plan],
        ledger: CostLedger | None = None,
    ) -> tuple[ExecutionResult, dict[Plan, Table]]:
        """Run ``plan``, also capturing the results of target subplans.

        This is DeepSea's instrumentation hook (§9): intermediate results
        that the query computes anyway are snapshotted as they are
        produced, so materializing them as views costs only the write.  A
        target that the (possibly rewritten) plan never computes is simply
        absent from the returned mapping.
        """
        self._capture_targets = set(targets)
        self._captured = {}
        try:
            result = self.execute(plan, ledger)
            return result, dict(self._captured)
        finally:
            self._capture_targets = set()
            self._captured = {}

    # ------------------------------------------------------------------
    def _eval(self, plan: Plan, ledger: CostLedger) -> Table:
        table = self._eval_node(plan, ledger)
        if plan in self._boundaries:
            ledger.charge_write(table.size_bytes, nfiles=1)
        if self._capture_targets and plan in self._capture_targets:
            self._captured[plan] = table
        return table

    def _eval_node(self, plan: Plan, ledger: CostLedger) -> Table:
        if isinstance(plan, Relation):
            return self._eval_relation(plan, ledger)
        if isinstance(plan, MaterializedScan):
            return self._eval_materialized(plan, ledger)
        if isinstance(plan, Select):
            child = self._eval(plan.child, ledger)
            return child.filter(conjunction_mask(plan.predicates, child))
        if isinstance(plan, Project):
            child = self._eval(plan.child, ledger)
            return child.project(plan.columns)
        if isinstance(plan, Join):
            left = self._eval(plan.left, ledger)
            right = self._eval(plan.right, ledger)
            out = hash_join(left, right, plan.left_attr, plan.right_attr)
            ledger.charge_jobs(1)
            ledger.charge_shuffle(out.size_bytes)
            return out
        if isinstance(plan, Aggregate):
            child = self._eval(plan.child, ledger)
            out = aggregate(child, plan.group_by, plan.aggregates)
            ledger.charge_jobs(1)
            ledger.charge_shuffle(out.size_bytes)
            return out
        raise PlanError(f"cannot execute node of type {type(plan).__name__}")

    def _eval_relation(self, plan: Relation, ledger: CostLedger) -> Table:
        table = self.context.catalog.get(plan.name)
        ledger.charge_read(table.size_bytes, nfiles=1)
        return table

    def _eval_materialized(self, plan: MaterializedScan, ledger: CostLedger) -> Table:
        pool = self.context.pool
        if pool is None:
            raise PlanError("MaterializedScan requires a pool")
        if not plan.fragment_ids:
            entry = pool.whole_view_entry(plan.view_id)
            if entry is None:
                raise PlanError(f"whole view not resident: {plan.view_id!r}")
            ledger.charge_read(entry.size_bytes, nfiles=1)
            return pool.read_entry(entry.fragment_id, ledger)
        total_bytes = 0.0
        pieces: list[Table] = []
        clips = plan.clips or (None,) * len(plan.fragment_ids)
        if len(clips) != len(plan.fragment_ids):
            raise PlanError("clips must parallel fragment_ids")
        for fid, clip in zip(plan.fragment_ids, clips):
            entry = pool.get_fragment(fid)
            total_bytes += entry.size_bytes
            piece = pool.read_entry(fid, ledger)
            if clip is not None:
                if plan.attr is None:
                    raise PlanError("clipped scan requires the partition attr")
                piece = piece.filter(clip.mask(piece.column(plan.attr)))
            pieces.append(piece)
        ledger.charge_read(total_bytes, nfiles=len(plan.fragment_ids))
        return Table.concat_many(pieces)


# ----------------------------------------------------------------------
# Physical operators
# ----------------------------------------------------------------------
def hash_join(left: Table, right: Table, left_attr: str, right_attr: str) -> Table:
    """Equi-join, fully vectorized, preserving bag semantics.

    When the two key columns share a name, the right copy is dropped; any
    other name collision is an error (workload schemas use unique names).

    The build side's stable argsort comes from the cross-query index cache
    (:mod:`repro.engine.indexes`): base tables and resident fragments are
    sorted once per column for the lifetime of the table object, not once
    per join.  The cached order is exactly what was computed inline before,
    so output rows (values *and* order) are unchanged.
    """
    collisions = (set(left.schema.names) & set(right.schema.names)) - {right_attr}
    if collisions:
        raise SchemaError(f"join would duplicate columns: {sorted(collisions)}")
    drop_right = {right_attr} if right_attr == left_attr else set()

    starts, ends, order = join_probe(left, right, left_attr, right_attr)
    counts = ends - starts
    total = int(counts.sum())
    schema = left.schema.concat(right.schema, drop=drop_right)
    if total == 0:
        return Table.empty(schema, max(left.scale, right.scale))

    left_idx = np.repeat(np.arange(left.nrows), counts)
    offsets = np.zeros(left.nrows, dtype=np.int64)
    np.cumsum(counts[:-1], out=offsets[1:])
    within = np.arange(total, dtype=np.int64) - np.repeat(offsets, counts)
    right_idx = order[np.repeat(starts, counts) + within]

    cols: dict[str, np.ndarray] = {}
    for name in left.schema.names:
        cols[name] = left.columns[name][left_idx]
    for name in right.schema.names:
        if name in drop_right:
            continue
        cols[name] = right.columns[name][right_idx]
    return Table(schema, cols, max(left.scale, right.scale))


def _agg_output_column(table: Table, spec: AggSpec) -> Column:
    if spec.func == "count":
        return Column(spec.alias, ColumnKind.INT64)
    if spec.func == "avg":
        return Column(spec.alias, ColumnKind.FLOAT64)
    return Column(spec.alias, table.schema.column(spec.attr).kind)


def aggregate(table: Table, group_by: tuple[str, ...], aggregates: tuple[AggSpec, ...]) -> Table:
    """Group-by aggregation via sort + ``reduceat``."""
    out_schema = Schema(
        tuple(table.schema.column(g) for g in group_by)
        + tuple(_agg_output_column(table, spec) for spec in aggregates)
    )
    if table.nrows == 0:
        return Table.empty(out_schema, table.scale)

    if group_by:
        keys = [table.column(g) for g in group_by]
        order = np.lexsort(keys[::-1])
        sorted_keys = [k[order] for k in keys]
        is_new = np.zeros(table.nrows, dtype=bool)
        is_new[0] = True
        for k in sorted_keys:
            is_new[1:] |= k[1:] != k[:-1]
        starts = np.flatnonzero(is_new)
    else:
        order = np.arange(table.nrows)
        starts = np.array([0])

    group_sizes = np.diff(np.append(starts, table.nrows))
    cols: dict[str, np.ndarray] = {}
    if group_by:
        for name, k in zip(group_by, sorted_keys):
            cols[name] = k[starts]

    for spec in aggregates:
        if spec.func == "count":
            cols[spec.alias] = group_sizes.astype(np.int64)
            continue
        values = table.column(spec.attr)[order]
        if spec.func == "sum":
            cols[spec.alias] = np.add.reduceat(values, starts)
        elif spec.func == "avg":
            cols[spec.alias] = np.add.reduceat(values.astype(np.float64), starts) / group_sizes
        elif spec.func == "min":
            cols[spec.alias] = np.minimum.reduceat(values, starts)
        elif spec.func == "max":
            cols[spec.alias] = np.maximum.reduceat(values, starts)
    return Table(out_schema, cols, table.scale)
