"""Plan execution.

The executor evaluates a logical plan against the catalog (base tables)
and the materialized-view pool (``MaterializedScan`` leaves), returning the
result :class:`~repro.engine.table.Table` and charging simulated time to a
:class:`~repro.engine.cost.CostLedger`:

* base-table and fragment scans charge read time (one map task per file /
  HDFS block);
* every join and aggregation charges one MapReduce job overhead plus a
  shuffle of its output;
* every *job boundary* writes its output to HDFS — MapReduce materializes
  intermediate results between jobs, which is exactly what DeepSea
  harvests as free view payloads (§2).  A job boundary is a join or
  aggregate, folded together with the projection chain directly above it
  (Hive applies projections inside the producing job);
* plans with no join/aggregate still cost one job (a map-only job).

All operators are numpy-vectorized; queries over the few-hundred-thousand
row scaled instances used in the benchmarks execute in milliseconds of
real time while reporting simulated cluster seconds.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.engine import result_cache
from repro.matching import fragment_cache
from repro.engine.catalog import Catalog
from repro.engine.cost import ClusterSpec, CostLedger
from repro.engine.indexes import join_probe
from repro.engine.schema import Column, Schema
from repro.engine.table import JoinView, Table, TableView, lazy_views_enabled
from repro.engine.types import ColumnKind, EncodedColumn, decoded, sort_key
from repro.errors import PlanError, SchemaError
from repro.query.algebra import (
    Aggregate,
    AggSpec,
    Join,
    MaterializedScan,
    Plan,
    Project,
    Relation,
    Select,
)
from repro.query.analysis import analyze_plan
from repro.query.predicates import conjunction_mask
from repro.storage.pool import MaterializedViewPool


@dataclass
class ExecutionContext:
    """Everything a plan needs to run."""

    catalog: Catalog
    pool: MaterializedViewPool | None = None
    cluster: ClusterSpec = field(default_factory=ClusterSpec)


@dataclass
class ExecutionResult:
    """A query answer plus its simulated cost."""

    table: Table
    ledger: CostLedger

    @property
    def elapsed_s(self) -> float:
        return self.ledger.total_seconds


class Executor:
    """Evaluates logical plans."""

    def __init__(self, context: ExecutionContext):
        self.context = context
        self._capture_targets: set[Plan] = set()
        self._captured: dict[Plan, Table] = {}
        self._boundaries: frozenset[Plan] = frozenset()

    # ------------------------------------------------------------------
    def execute(
        self,
        plan: Plan,
        ledger: CostLedger | None = None,
        *,
        use_cache: bool = True,
    ) -> ExecutionResult:
        """Run ``plan`` and return its result table and cost ledger.

        Whole-plan executions go through the cross-query result cache
        (:mod:`repro.engine.result_cache`) when it is safe: no live
        capture targets, no fault injection, and a pristine ledger to
        replay into.  A hit returns the cached table and merges the
        recorded simulated charges — bit-identical to re-executing.
        ``use_cache=False`` bypasses the cache entirely — one-shot
        executions against throwaway catalogs (the delta-maintenance pass
        runs view plans over batch-only catalogs whose uids never recur)
        would otherwise fill the LRU with unreachable entries.
        """
        ledger = ledger if ledger is not None else CostLedger(self.context.cluster)
        analysis = analyze_plan(plan)  # boundaries + job count, one traversal
        key = None
        shared = None
        if use_cache and not self._capture_targets and result_cache.eligible(ledger):
            key = result_cache.ResultCache.key_for(plan, analysis, self.context)
            if key is not None:
                shared = result_cache.ResultCache.shared_parts(plan, analysis, self.context)
                entry = result_cache.GLOBAL.lookup_through(key, shared)
                if entry is not None:
                    table = result_cache.ResultCache.replay(entry, ledger)
                    return ExecutionResult(table, ledger)
        self._boundaries = analysis.boundaries
        table = self._eval(plan, ledger)
        if analysis.job_ops == 0:
            ledger.charge_jobs(1)
        if key is not None:
            result_cache.GLOBAL.store(key, table, ledger, shared)
        return ExecutionResult(table, ledger)

    def execute_with_capture(
        self,
        plan: Plan,
        targets: list[Plan],
        ledger: CostLedger | None = None,
    ) -> tuple[ExecutionResult, dict[Plan, Table]]:
        """Run ``plan``, also capturing the results of target subplans.

        This is DeepSea's instrumentation hook (§9): intermediate results
        that the query computes anyway are snapshotted as they are
        produced, so materializing them as views costs only the write.  A
        target that the (possibly rewritten) plan never computes is simply
        absent from the returned mapping.
        """
        self._capture_targets = set(targets)
        self._captured = {}
        try:
            result = self.execute(plan, ledger)
            return result, dict(self._captured)
        finally:
            self._capture_targets = set()
            self._captured = {}

    # ------------------------------------------------------------------
    def _eval(self, plan: Plan, ledger: CostLedger) -> Table:
        table = self._eval_node(plan, ledger)
        if plan in self._boundaries:
            ledger.charge_write(table.size_bytes, nfiles=1)
        if self._capture_targets and plan in self._capture_targets:
            self._captured[plan] = table
        return table

    def _eval_node(self, plan: Plan, ledger: CostLedger) -> Table:
        if isinstance(plan, Relation):
            return self._eval_relation(plan, ledger)
        if isinstance(plan, MaterializedScan):
            return self._eval_materialized(plan, ledger)
        if isinstance(plan, Select):
            fused = self._fused_materialized_select(plan, ledger)
            if fused is not None:
                return fused
            child = self._eval(plan.child, ledger)
            return child.filter(conjunction_mask(plan.predicates, child))
        if isinstance(plan, Project):
            child = self._eval(plan.child, ledger)
            return child.project(plan.columns)
        if isinstance(plan, Join):
            left = self._eval(plan.left, ledger)
            right = self._eval(plan.right, ledger)
            out = hash_join(left, right, plan.left_attr, plan.right_attr)
            ledger.charge_jobs(1)
            ledger.charge_shuffle(out.size_bytes)
            return out
        if isinstance(plan, Aggregate):
            child = self._eval(plan.child, ledger)
            out = aggregate(child, plan.group_by, plan.aggregates)
            ledger.charge_jobs(1)
            ledger.charge_shuffle(out.size_bytes)
            return out
        raise PlanError(f"cannot execute node of type {type(plan).__name__}")

    def _fused_materialized_select(self, plan: Select, ledger: CostLedger) -> "Table | None":
        """Selection fused into a fragment scan via the fragment cache.

        ``Select`` directly over a fragmented ``MaterializedScan`` is the
        shape every partition rewriting produces.  The seed evaluation
        reads every fragment payload, clips each piece, concatenates, and
        then evaluates the selection conjunction over the concatenation.
        The fragment cache classifies each piece against the predicate
        intersection instead: ``EMPTY`` pieces skip the payload read
        entirely, ``FULL`` pieces skip masking, and ``PARTIAL`` pieces
        get one fused (predicates ∧ clip) mask — so each surviving row is
        tested once, at the scan.

        Wall-clock only: the ledger charge is identical to the seed path
        (all fragment bytes, all files — see the charging invariant in
        :meth:`_eval_materialized`), and the returned rows match the
        unfused evaluation bit for bit.  Returns ``None`` when the shape
        or safety guards do not apply (faulted ledger, capture target or
        job boundary on the scan, multi-attribute conjunction), in which
        case the caller runs the seed path.
        """
        scan = plan.child
        if not isinstance(scan, MaterializedScan) or not scan.fragment_ids:
            return None
        if ledger.faults is not None:
            return None  # fault RNG draws on payload reads must replay
        if scan in self._capture_targets or scan in self._boundaries:
            return None  # the unselected scan output is observable
        pool = self.context.pool
        if pool is None:
            raise PlanError("MaterializedScan requires a pool")
        cache = fragment_cache.GLOBAL
        decisions = cache.classify(pool, scan, plan.predicates)
        if decisions is None:
            return None
        total_bytes = 0.0
        pieces: list[Table] = []
        for fid, decision in zip(scan.fragment_ids, decisions):
            entry = pool.get_fragment(fid)
            total_bytes += entry.size_bytes
            if decision.state == fragment_cache.EMPTY:
                cache.note_empty()
                continue
            piece = pool.read_entry(fid, ledger)
            if decision.state == fragment_cache.FULL:
                cache.note_rows(piece.nrows, piece.nrows)
                pieces.append(piece)
                continue
            masked = piece.filter(decision.eff.mask(piece.column(scan.attr)))
            cache.note_rows(piece.nrows, masked.nrows)
            pieces.append(masked)
        ledger.charge_read(total_bytes, nfiles=len(scan.fragment_ids))
        if not pieces:
            # All pieces pruned: an empty selection over the first
            # fragment's payload preserves schema and column kinds.
            donor = pool.read_entry(scan.fragment_ids[0], ledger)
            return donor.filter(np.zeros(donor.nrows, dtype=bool))
        return Table.concat_many(pieces)

    def _eval_relation(self, plan: Relation, ledger: CostLedger) -> Table:
        table = self.context.catalog.get(plan.name)
        ledger.charge_read(table.size_bytes, nfiles=1)
        return table

    def _eval_materialized(self, plan: MaterializedScan, ledger: CostLedger) -> Table:
        # Charging invariant (audited, pinned by a regression test in
        # tests/test_executor_costing.py): the *executor* owns the base
        # read charge for pool scans — one ``charge_read`` for the whole
        # view, or one batched ``charge_read(total, nfiles=n)`` across all
        # fragments.  ``pool.read_entry`` reads the payload with
        # ``charge_payload=False``, so it contributes **zero** base read
        # seconds / map tasks / bytes; it exists to route *fault* costs
        # (replica-damage penalties, lost-block recovery) onto the same
        # ledger.  There is no double charge.
        pool = self.context.pool
        if pool is None:
            raise PlanError("MaterializedScan requires a pool")
        if not plan.fragment_ids:
            entry = pool.whole_view_entry(plan.view_id)
            if entry is None:
                raise PlanError(f"whole view not resident: {plan.view_id!r}")
            ledger.charge_read(entry.size_bytes, nfiles=1)
            return pool.read_entry(entry.fragment_id, ledger)
        total_bytes = 0.0
        pieces: list[Table] = []
        clips = plan.clips or (None,) * len(plan.fragment_ids)
        if len(clips) != len(plan.fragment_ids):
            raise PlanError("clips must parallel fragment_ids")
        for fid, clip in zip(plan.fragment_ids, clips):
            entry = pool.get_fragment(fid)
            total_bytes += entry.size_bytes
            piece = pool.read_entry(fid, ledger)
            if clip is not None:
                if plan.attr is None:
                    raise PlanError("clipped scan requires the partition attr")
                piece = piece.filter(clip.mask(piece.column(plan.attr)))
            pieces.append(piece)
        ledger.charge_read(total_bytes, nfiles=len(plan.fragment_ids))
        return Table.concat_many(pieces)


# ----------------------------------------------------------------------
# Physical operators
# ----------------------------------------------------------------------
def hash_join(left: Table, right: Table, left_attr: str, right_attr: str) -> Table:
    """Equi-join, fully vectorized, preserving bag semantics.

    When the two key columns share a name, the right copy is dropped; any
    other name collision is an error (workload schemas use unique names).

    The build side's stable argsort comes from the cross-query index cache
    (:mod:`repro.engine.indexes`): base tables and resident fragments are
    sorted once per column for the lifetime of the table object, not once
    per join.  The cached order is exactly what was computed inline before,
    so output rows (values *and* order) are unchanged.
    """
    collisions = (set(left.schema.names) & set(right.schema.names)) - {right_attr}
    if collisions:
        raise SchemaError(f"join would duplicate columns: {sorted(collisions)}")
    drop_right = {right_attr} if right_attr == left_attr else set()

    starts, ends, order = join_probe(left, right, left_attr, right_attr)
    counts = ends - starts
    total = int(counts.sum())
    schema = left.schema.concat(right.schema, drop=drop_right)
    if total == 0:
        return Table.empty(schema, max(left.scale, right.scale))

    if total == int(np.count_nonzero(counts)):
        # Foreign-key fast path: every probe row matches at most one build
        # row (the workload's fact⋈dim shape).  The general repeat/cumsum
        # expansion degenerates to ``within ≡ 0``, so the match indices
        # collapse to two direct gathers — bit-identical output order.
        left_idx = np.flatnonzero(counts)
        right_idx = order[starts[left_idx]]
    else:
        left_idx = np.repeat(np.arange(left.nrows), counts)
        offsets = np.zeros(left.nrows, dtype=np.int64)
        np.cumsum(counts[:-1], out=offsets[1:])
        within = np.arange(total, dtype=np.int64) - np.repeat(offsets, counts)
        right_idx = order[np.repeat(starts, counts) + within]

    # Gather fusion: when an input is a late-materialized single-root
    # view, compose its selection vector with the join indices so output
    # columns gather straight from the view's root — the payload columns
    # of a Select→Project→Join chain are touched at most once.
    lsrc, lrows = _gather_source(left)
    if lrows is not None:
        left_idx = lrows[left_idx]
    rsrc, rrows = _gather_source(right)
    if rrows is not None:
        right_idx = rrows[right_idx]

    scale = max(left.scale, right.scale)
    if lazy_views_enabled():
        # The join output itself stays late-materialized: columns the
        # plan projects away downstream are never gathered at all.
        side_of = {name: 0 for name in left.schema.names}
        side_of.update({name: 1 for name in right.schema.names if name not in drop_right})
        return JoinView(schema, scale, [(lsrc, left_idx), (rsrc, right_idx)], side_of)

    cols: dict[str, np.ndarray] = {}
    for name in left.schema.names:
        cols[name] = lsrc.column(name)[left_idx]
    for name in right.schema.names:
        if name in drop_right:
            continue
        cols[name] = rsrc.column(name)[right_idx]
    return Table(schema, cols, scale)


def _gather_source(table: Table) -> "tuple[Table, np.ndarray | None]":
    """``(source, rows)`` such that ``table.column(n) == source.column(n)[rows]``
    (``rows is None`` meaning identity).  Multi-root views are their own
    source — their columns gather lazily per name."""
    if isinstance(table, TableView):
        return table.gather_plan()
    return table, None


def _agg_output_column(table: Table, spec: AggSpec) -> Column:
    if spec.func == "count":
        return Column(spec.alias, ColumnKind.INT64)
    if spec.func == "avg":
        return Column(spec.alias, ColumnKind.FLOAT64)
    return Column(spec.alias, table.schema.column(spec.attr).kind)


def _pack_group_codes(
    keys: "list[np.ndarray]",
) -> "tuple[np.ndarray, list[int], list[int]] | None":
    """Mixed-radix pack of compact integer keys into one int64 code.

    The *last* key varies fastest (stride 1), so ascending packed codes
    enumerate key tuples in exactly the lexicographic order that
    ``np.lexsort(keys[::-1])`` sorts rows into — the group order the
    general aggregation path produces.  Returns ``(codes, los, radices)``
    for unpacking, or ``None`` when the combined key space is too large
    for an O(rows)-ish bucket array (the accumulating guard runs in
    arbitrary-precision Python ints, so a huge first key bails out before
    any packing arithmetic could overflow).
    """
    n = len(keys[0])
    los: list[int] = []
    radices: list[int] = []
    span_product = 1
    for key in keys:
        lo = int(key.min())
        radix = int(key.max()) - lo + 1
        los.append(lo)
        radices.append(radix)
        span_product *= radix
        if span_product > 8 * n + 1024:
            return None
    codes = np.zeros(n, dtype=np.int64)
    for key, lo, radix in zip(keys, los, radices):
        codes *= radix
        codes += key.astype(np.int64) - lo
    return codes, los, radices


def _aggregate_bincount(
    table: Table,
    out_schema: Schema,
    group_by: tuple[str, ...],
    raw_keys: "list[np.ndarray]",
    keys: "list[np.ndarray]",
    aggregates: tuple[AggSpec, ...],
) -> "Table | None":
    """Sort-free grouping for compact integer keys, or ``None``.

    Multiple keys mixed-radix-pack into one int64 code
    (:func:`_pack_group_codes`); ``np.bincount`` then buckets rows
    directly, so the stable argsort/lexsort the general path pays per
    call disappears.  The result is **bit-identical** to
    sort+``reduceat``, which constrains when this path may run:

    * Bins come out in ascending packed-code order — exactly the
      lexicographic group order the sorted path produces.  ``count``
      (pure integer arithmetic) is always safe.
    * ``sum``/``avg`` accumulate through ``bincount``'s float64 weights,
      a *different addition order* than ``reduceat``.  That is only
      bit-safe when every partial sum is exact, i.e. for integer inputs
      whose absolute row total stays below 2**53 — then every
      intermediate in either order is an exactly-represented integer and
      the results are equal bit-for-bit, not just approximately.
      Float inputs, ``min``/``max``, and unbounded magnitudes fall back
      to the sorted path.
    * The combined key span must be small (compact dictionary codes or
      dense dimension keys) so the bucket array stays O(rows).
    """
    packed = _pack_group_codes(keys)
    if packed is None:
        return None
    shifted, los, radices = packed
    plans: list[tuple[AggSpec, "np.ndarray | None"]] = []
    for spec in aggregates:
        if spec.func == "count":
            plans.append((spec, None))
            continue
        if spec.func not in ("sum", "avg"):
            return None
        vals = decoded(table.column(spec.attr))
        if vals.dtype.kind not in "iu":
            return None
        if vals.size and int(np.abs(vals).max()) * vals.size >= 2**53:
            return None
        plans.append((spec, vals))

    bucket_counts = np.bincount(shifted)
    present = np.flatnonzero(bucket_counts)
    sizes = bucket_counts[present]

    cols: dict[str, np.ndarray] = {}
    remainder = present
    digits: "list[np.ndarray]" = []
    for radix in reversed(radices):
        digits.append(remainder % radix)
        remainder = remainder // radix
    digits.reverse()
    for name, raw, key, digit, lo in zip(group_by, raw_keys, keys, digits, los):
        head = (digit + lo).astype(key.dtype)
        if isinstance(raw, EncodedColumn):
            cols[name] = EncodedColumn(head, raw.values)
        else:
            cols[name] = head.astype(raw.dtype)
    for spec, vals in plans:
        if vals is None:
            cols[spec.alias] = sizes.astype(np.int64)
            continue
        sums = np.bincount(shifted, weights=vals)[present]
        if spec.func == "avg":
            cols[spec.alias] = sums / sizes
        else:
            out_dtype = vals.dtype if vals.dtype == np.uint64 else np.int64
            cols[spec.alias] = sums.astype(out_dtype)
    return Table(out_schema, cols, table.scale)


def aggregate(table: Table, group_by: tuple[str, ...], aggregates: tuple[AggSpec, ...]) -> Table:
    """Group-by aggregation via sort + ``reduceat``.

    Encoded string group keys sort and compare by their int32 codes
    (sorted dictionaries make code order equal value order), and the
    output group columns stay encoded — no decode anywhere.  The row
    gather for aggregate inputs is computed once per distinct source
    attribute, not once per :class:`AggSpec`.
    """
    out_schema = Schema(
        tuple(table.schema.column(g) for g in group_by)
        + tuple(_agg_output_column(table, spec) for spec in aggregates)
    )
    if table.nrows == 0:
        return Table.empty(out_schema, table.scale)

    if group_by:
        raw_keys = [table.column(g) for g in group_by]
        keys = [sort_key(k) for k in raw_keys]
        if all(k.dtype.kind in "iu" for k in keys):
            fast = _aggregate_bincount(
                table, out_schema, group_by, raw_keys, keys, aggregates
            )
            if fast is not None:
                return fast
        if len(keys) == 1:
            # Stable argsort is the same permutation lexsort produces for
            # a single key; spelled directly so integer keys can take
            # numpy's non-comparison stable path.
            order = np.argsort(keys[0], kind="stable")
        else:
            order = np.lexsort(keys[::-1])
        sorted_keys = [k[order] for k in keys]
        is_new = np.zeros(table.nrows, dtype=bool)
        is_new[0] = True
        for k in sorted_keys:
            is_new[1:] |= k[1:] != k[:-1]
        starts = np.flatnonzero(is_new)
    else:
        order = np.arange(table.nrows)
        starts = np.array([0])

    group_sizes = np.diff(np.append(starts, table.nrows))
    cols: dict[str, np.ndarray] = {}
    if group_by:
        for name, raw, k in zip(group_by, raw_keys, sorted_keys):
            head = k[starts]
            if isinstance(raw, EncodedColumn):
                head = EncodedColumn(head, raw.values)
            cols[name] = head

    # One gather per distinct aggregate input attribute: several AggSpecs
    # over the same column (sum+avg of sales is the workload's common
    # shape) share a single ``values[order]`` materialization.
    gathered: dict[str, np.ndarray] = {}

    def sorted_values(attr: str) -> np.ndarray:
        values = gathered.get(attr)
        if values is None:
            values = decoded(table.column(attr))[order]
            gathered[attr] = values
        return values

    for spec in aggregates:
        if spec.func == "count":
            cols[spec.alias] = group_sizes.astype(np.int64)
            continue
        values = sorted_values(spec.attr)
        if spec.func == "sum":
            acc = values
            # Accumulate narrow integers in int64 to rule out silent
            # overflow; int64/float64 inputs pass through unchanged, so
            # existing results stay bit-identical.
            if acc.dtype.kind in "iu" and acc.dtype.itemsize < 8:
                acc = acc.astype(np.int64)
            cols[spec.alias] = np.add.reduceat(acc, starts)
        elif spec.func == "avg":
            cols[spec.alias] = np.add.reduceat(values.astype(np.float64), starts) / group_sizes
        elif spec.func == "min":
            cols[spec.alias] = np.minimum.reduceat(values, starts)
        elif spec.func == "max":
            cols[spec.alias] = np.maximum.reduceat(values, starts)
    return Table(out_schema, cols, table.scale)
