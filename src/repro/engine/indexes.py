"""Cross-query join-key index caches.

Every equi-join in :func:`repro.engine.executor.hash_join` needs the build
side's key column in sorted order (argsort + sorted keys) before it can
binary-search the probe keys.  Base tables and resident view fragments are
immutable and joined over and over across a workload — on the SDSS
benchmarks the same dimension table is re-argsorted hundreds of times —
so this module keeps one :class:`SortIndex` per ``(table, column)`` pair
and hands it back on every subsequent join.

Invalidation is by *table identity*: tables are immutable by convention
(operators always allocate new tables), so an index is valid exactly as
long as its table object is alive.  The cache is a
:class:`weakref.WeakKeyDictionary`, which drops a table's indexes the
moment the table itself is garbage collected — nothing pins result tables
in memory, and there is no explicit invalidation protocol to get wrong.

The cache is **semantically transparent**: :func:`sort_index` computes
exactly the ``np.argsort(keys, kind="stable")`` the executor used to run
inline, so join outputs (row order included) and every simulated-cost
ledger are byte-identical with the cache hot, cold, or disabled.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass

import numpy as np

from repro.caches import register_cache
from repro.engine.table import Table
from repro.engine.types import decoded, sort_key


@dataclass(frozen=True)
class SortIndex:
    """Sorted-key index of one column: stable argsort order + sorted keys."""

    order: np.ndarray
    sorted_keys: np.ndarray


class IndexCache:
    """Per-``(table, column)`` sort indexes, weakly keyed by table identity."""

    def __init__(self) -> None:
        self._indexes: "weakref.WeakKeyDictionary[Table, dict[str, SortIndex]]" = (
            weakref.WeakKeyDictionary()
        )
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def _track_eviction(self, table: Table, per_table: dict) -> None:
        # Entries die with their table (weak keys); the finalizer closes
        # over the inner dict — not the table — so it counts exactly the
        # entries that were live at collection time.
        weakref.finalize(table, self._on_table_dead, per_table)

    def _on_table_dead(self, per_table: dict) -> None:
        self.evictions += len(per_table)

    def sort_index(self, table: Table, column: str) -> SortIndex:
        """The cached stable-sort index of ``table[column]``, building it once."""
        per_table = self._indexes.get(table)
        if per_table is None:
            per_table = {}
            self._indexes[table] = per_table
            self._track_eviction(table, per_table)
        index = per_table.get(column)
        if index is None:
            self.misses += 1
            keys = table.column(column)
            # Encoded string columns sort by their int32 codes (sorted
            # dictionary ⇒ identical order); sorted_keys stays decoded so
            # probes from *other* dictionaries binary-search correctly.
            order = np.argsort(sort_key(keys), kind="stable")
            index = SortIndex(order, decoded(keys)[order])
            per_table[column] = index
        else:
            self.hits += 1
        return index

    def clear(self) -> None:
        # Empty the inner dicts so outstanding finalizers (which hold
        # them) cannot count already-cleared entries as later evictions.
        for per_table in self._indexes.values():
            per_table.clear()
        self._indexes.clear()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def stats(self) -> dict:
        """Counter snapshot for the profile report's cache section."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "entries": len(self),
        }

    def __len__(self) -> int:
        return sum(len(d) for d in self._indexes.values())


class _PairBox:
    """Per-(probe root, build root) count of cached probes, for evictions."""

    __slots__ = ("cached", "fired")

    def __init__(self) -> None:
        self.cached = 0
        self.fired = False


class ProbeCache:
    """Cached binary-search results of full probe columns against a build side.

    For a join ``L ⋈ R`` the executor binary-searches every probe key of
    ``L`` into ``R``'s sorted keys.  When ``L`` is derived from a long-lived
    root table (a base relation or resident fragment) by selection — the
    shape of every workload query — the searchsorted of the *root's full
    key column* is the same for every query, and the per-query result is
    just a row-indexed slice of it:

        searchsorted(sk, root_keys)[rows] == searchsorted(sk, root_keys[rows])

    elementwise, so cached probes are bit-identical to direct ones.  Both
    ends of an entry are weakly referenced via the outer/inner weak dicts:
    an entry dies with either table.

    Admission is *two-strikes*: probing the full root column costs more
    than probing the query's selected rows, and many build sides are
    per-query temporaries that will never be joined against again.  The
    first sighting of a ``(root, build, attrs)`` pair therefore returns
    ``None`` (caller probes directly, exactly as without the cache); only
    a pair seen twice pays the one-time full-root probe and serves every
    later join from the cache.
    """

    def __init__(self) -> None:
        # root -> right -> {(left_attr, right_attr): None (seen once)
        #                   | (starts, ends) (cached)}
        self._probes: "weakref.WeakKeyDictionary[Table, weakref.WeakKeyDictionary]" = (
            weakref.WeakKeyDictionary()
        )
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def _on_pair_dead(self, box: "_PairBox") -> None:
        # Either end of a (probe root, build root) pair dying drops every
        # cached probe of the pair; count the batch exactly once.
        if not box.fired:
            box.fired = True
            self.evictions += box.cached
            box.cached = 0

    def starts_ends(
        self, root: Table, left_attr: str, right: Table, right_attr: str,
        sorted_rkeys: np.ndarray,
    ) -> "tuple[np.ndarray, np.ndarray] | None":
        """(starts, ends) of every root row's key in the build side's sorted
        keys, or ``None`` on a pair's first sighting (caller probes directly).
        """
        per_root = self._probes.get(root)
        if per_root is None:
            per_root = weakref.WeakKeyDictionary()
            self._probes[root] = per_root
        pair = per_root.get(right)
        if pair is None:
            # The eviction finalizers close over a tiny counter box — not
            # the probe arrays — so a dead pair's payload is never pinned.
            box = _PairBox()
            pair = ({}, box)
            per_root[right] = pair
            weakref.finalize(root, self._on_pair_dead, box)
            weakref.finalize(right, self._on_pair_dead, box)
        per_right, box = pair
        attrs = (left_attr, right_attr)
        if attrs not in per_right:
            per_right[attrs] = None  # first strike: probe directly
            return None
        entry = per_right[attrs]
        if entry is None:
            self.misses += 1
            keys = decoded(root.column(left_attr))
            entry = (
                np.searchsorted(sorted_rkeys, keys, side="left"),
                np.searchsorted(sorted_rkeys, keys, side="right"),
            )
            per_right[attrs] = entry
            box.cached += 1
        else:
            self.hits += 1
        return entry

    def clear(self) -> None:
        # Disarm outstanding finalizers so cleared entries are not counted
        # as later evictions, and empty the inner dicts they reference.
        for per_root in self._probes.values():
            for per_right, box in per_root.values():
                per_right.clear()
                box.fired = True
                box.cached = 0
        self._probes.clear()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def stats(self) -> dict:
        """Counter snapshot for the profile report's cache section."""
        entries = sum(
            sum(1 for v in per_right.values() if v is not None)
            for per_root in self._probes.values()
            for per_right, _ in per_root.values()
        )
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "entries": entries,
        }


# One process-wide cache: tables are keyed by identity, so separate systems
# (separate catalogs) never collide, and weak keys bound the footprint to
# live tables only.
_GLOBAL_CACHE = IndexCache()
_PROBE_CACHE = ProbeCache()


def sort_index(table: Table, column: str) -> SortIndex:
    """Module-level accessor used by the executor's hot path."""
    return _GLOBAL_CACHE.sort_index(table, column)


def join_probe(
    left: Table, right: Table, left_attr: str, right_attr: str
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Everything ``hash_join`` needs: per-probe-row (starts, ends) match
    ranges into the build side's stable-sorted keys, plus the build side's
    stable sort order (rank → build row).

    Both join inputs are resolved through their row lineage:

    * Probe side — when ``left`` selects rows of a long-lived root, the
      root's full-column binary search against the build keys is cached
      (two-strikes) and sliced per query, elementwise identical to probing
      ``left`` directly.
    * Build side — when ``right`` is a *monotonic* selection of a root
      (filters/projections, the shape every pushed-down dimension select
      has), the subset's stable sort order and the probe positions into it
      are derived from the root's cached sort index and the cached
      root-vs-root probe by pure integer arithmetic: a prefix sum of
      subset membership in root-sorted order converts full-table match
      counts into subset match counts.  Stable sort of a monotonic subset
      preserves tie order, so the derived order equals the direct
      ``np.argsort(keys, kind="stable")`` exactly — no float operation is
      involved anywhere, making the fast path bit-identical.
    """
    lin_l = left._lineage
    if lin_l is None:
        lroot, lrows = left, None
    else:
        lroot, lrows = lin_l[0], lin_l[1]

    lin_r = right._lineage
    if lin_r is None:
        rroot, rrows = right, None
    else:
        rroot, rrows, rmono = lin_r
        if rrows is not None and not rmono:
            rroot, rrows = right, None  # reordered subset: underivable

    root_index = sort_index(rroot, right_attr)
    entry = _PROBE_CACHE.starts_ends(lroot, left_attr, rroot, right_attr, root_index.sorted_keys)

    if entry is None:
        # First sighting of this (probe root, build root) pair: compute
        # directly on the query's own tables — identical to the uncached
        # executor.
        if rrows is None:
            order, sorted_rkeys = root_index.order, root_index.sorted_keys
        else:
            index = _GLOBAL_CACHE.sort_index(right, right_attr)
            order, sorted_rkeys = index.order, index.sorted_keys
        keys = decoded(left.column(left_attr))
        return (
            np.searchsorted(sorted_rkeys, keys, side="left"),
            np.searchsorted(sorted_rkeys, keys, side="right"),
            order,
        )

    starts_full, ends_full = entry
    if lrows is not None:
        starts_full, ends_full = starts_full[lrows], ends_full[lrows]
    if rrows is None:
        return starts_full, ends_full, root_index.order

    # Derive the subset probe: cum[j] = how many of the first j root-sorted
    # keys belong to the subset, so a "matches among root keys < x" count
    # becomes a "matches among subset keys < x" count.
    member = np.zeros(rroot.nrows, dtype=bool)
    member[rrows] = True
    member_sorted = member[root_index.order]
    cum = np.zeros(rroot.nrows + 1, dtype=np.int64)
    np.cumsum(member_sorted, out=cum[1:])
    starts = cum[starts_full]
    ends = cum[ends_full]
    # rank in subset-sorted order -> row of `right`
    order = np.searchsorted(rrows, root_index.order[member_sorted])
    return starts, ends, order


def prewarm_join(
    left_root: Table, left_attr: str, right_root: Table, right_attr: str
) -> None:
    """Build the cross-query caches for one base-table equi-join up front.

    Used by the work-stealing scheduler's parent-side prewarm: a join both
    sides of which are long-lived root tables will be probed by every
    worker, so the parent pays the sort index and the full-root probe once
    before forking and the warm-forked workers inherit both.  Bypasses the
    probe cache's two-strikes admission deliberately — the caller is
    asserting the pair recurs across the workload.
    """
    root_index = sort_index(right_root, right_attr)
    entry = _PROBE_CACHE.starts_ends(
        left_root, left_attr, right_root, right_attr, root_index.sorted_keys
    )
    if entry is None:  # first strike registered the pair; second fills it
        _PROBE_CACHE.starts_ends(
            left_root, left_attr, right_root, right_attr, root_index.sorted_keys
        )


def cache_stats() -> tuple[int, int]:
    """(hits, misses) of the global sort-index cache — for tests and profiling."""
    return _GLOBAL_CACHE.hits, _GLOBAL_CACHE.misses


def probe_cache_stats() -> tuple[int, int]:
    """(hits, misses) of the global probe cache — for tests and profiling."""
    return _PROBE_CACHE.hits, _PROBE_CACHE.misses


def clear_caches() -> None:
    """Drop all cached indexes (tests / long-lived sessions)."""
    _GLOBAL_CACHE.clear()
    _PROBE_CACHE.clear()


register_cache("engine.indexes.sort", _GLOBAL_CACHE.clear, _GLOBAL_CACHE.stats)
register_cache("engine.indexes.probe", _PROBE_CACHE.clear, _PROBE_CACHE.stats)
