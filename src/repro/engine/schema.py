"""Relational schemas.

A :class:`Schema` is an ordered collection of uniquely named
:class:`Column` definitions.  Column names are globally unique within a
workload (TPC-style prefixes such as ``ss_item_sk`` / ``i_item_sk``), which
lets joins concatenate schemas without a qualification mechanism.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.engine.types import ColumnKind
from repro.errors import SchemaError


@dataclass(frozen=True)
class Column:
    """A single column definition.

    Attributes:
        name: Unique column name.
        kind: Logical type.
        width: Accounting width in bytes (defaults to the kind's width).
    """

    name: str
    kind: ColumnKind = ColumnKind.INT64
    width: int = 0

    def __post_init__(self) -> None:
        if self.width <= 0:
            object.__setattr__(self, "width", self.kind.default_width)


@dataclass(frozen=True)
class Schema:
    """An ordered, uniquely named set of columns."""

    columns: tuple[Column, ...]
    _by_name: dict[str, Column] = field(
        init=False, repr=False, compare=False, hash=False, default_factory=dict
    )

    def __post_init__(self) -> None:
        by_name: dict[str, Column] = {}
        for col in self.columns:
            if col.name in by_name:
                raise SchemaError(f"duplicate column name: {col.name!r}")
            by_name[col.name] = col
        object.__setattr__(self, "_by_name", by_name)

    @classmethod
    def of(cls, *columns: Column) -> "Schema":
        return cls(tuple(columns))

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(col.name for col in self.columns)

    @property
    def row_bytes(self) -> int:
        """Accounting width of one row in bytes."""
        return sum(col.width for col in self.columns)

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def __len__(self) -> int:
        return len(self.columns)

    def column(self, name: str) -> Column:
        try:
            return self._by_name[name]
        except KeyError:
            raise SchemaError(f"no such column: {name!r}") from None

    def subset(self, names: tuple[str, ...] | list[str]) -> "Schema":
        """Schema restricted to ``names``, in the order given."""
        return Schema(tuple(self.column(n) for n in names))

    def concat(self, other: "Schema", drop: set[str] | None = None) -> "Schema":
        """Concatenate two schemas, optionally dropping columns of ``other``.

        Columns in ``drop`` are removed from ``other`` before concatenation;
        this is how joins avoid duplicating a shared join attribute.
        """
        drop = drop or set()
        extra = tuple(c for c in other.columns if c.name not in drop)
        return Schema(self.columns + extra)
