"""Column types for the simulated analytical engine.

The engine is columnar and numpy-backed.  Each column has a logical kind
that determines its numpy dtype and its *accounting width* — the number of
bytes one value contributes to the simulated on-disk size of a table.  The
accounting width is what the DeepSea cost model sees; it is deliberately
decoupled from the in-memory representation so that string columns can be
dictionary-encoded while still being charged a fixed width.

String columns are stored as an :class:`EncodedColumn`: an ``int32`` code
array plus a *sorted* dictionary of distinct values.  Because the
dictionary is sorted, code order equals value order, so every comparison-
based kernel (``lexsort``, ``argsort``, run-boundary equality in
``distinct``/``aggregate``) runs on the integer codes and produces row
orders bit-identical to operating on the decoded strings.  Codes flow
through filter/take/join/group-by untouched; values are decoded only at
the engine's edges (``to_rows``, pickling, cross-dictionary probes).
"""

from __future__ import annotations

import enum

import numpy as np


class ColumnKind(enum.Enum):
    """Logical type of a column."""

    INT64 = "int64"
    FLOAT64 = "float64"
    STRING = "string"

    @property
    def default_width(self) -> int:
        """Accounting width in bytes for one value of this kind."""
        if self is ColumnKind.STRING:
            return 32
        return 8

    @property
    def dtype(self) -> np.dtype:
        """The numpy dtype values of this kind present at the engine edge."""
        if self is ColumnKind.INT64:
            return np.dtype(np.int64)
        if self is ColumnKind.FLOAT64:
            return np.dtype(np.float64)
        return np.dtype(object)


class EncodedColumn:
    """A dictionary-encoded string column: int32 codes + sorted values.

    Invariant: ``values`` is sorted and duplicate-free, so for any two
    rows ``i, j``: ``codes[i] < codes[j]  ⇔  decoded[i] < decoded[j]``.
    Every order-sensitive kernel may therefore operate on ``codes``.
    The dictionary is shared (never copied) by fancy-indexing, so a
    filtered or joined column costs one int32 gather.
    """

    __slots__ = ("codes", "values")

    def __init__(self, codes: np.ndarray, values: np.ndarray):
        self.codes = codes
        self.values = values

    @classmethod
    def encode(cls, array) -> "EncodedColumn":
        arr = np.asarray(array, dtype=object)
        if len(arr) == 0:
            return cls(np.empty(0, dtype=np.int32), np.empty(0, dtype=object))
        values, codes = np.unique(arr, return_inverse=True)
        return cls(codes.astype(np.int32, copy=False), values)

    # -- container protocol -------------------------------------------
    def __len__(self) -> int:
        return len(self.codes)

    def __getitem__(self, item):
        if isinstance(item, (int, np.integer)):
            return self.values[self.codes[item]]
        return EncodedColumn(self.codes[item], self.values)

    def __eq__(self, other):
        # Element-wise, mirroring ndarray semantics (used by tests and
        # run-boundary detection on same-dictionary columns).
        if isinstance(other, EncodedColumn):
            if self.values is other.values or np.array_equal(self.values, other.values):
                return self.codes == other.codes
            return self.decode() == other.decode()
        return self.decode() == other

    __hash__ = None  # type: ignore[assignment] — mutable-array holder

    # -- ndarray-compatible surface -----------------------------------
    @property
    def dtype(self) -> np.dtype:
        """Logical dtype: what :meth:`decode` yields at the engine edge."""
        return np.dtype(object)

    @property
    def nbytes(self) -> int:
        return int(self.codes.nbytes) + int(self.values.nbytes)

    def decode(self) -> np.ndarray:
        """Materialize the object-array view of this column."""
        if len(self.values) == 0:
            return np.empty(len(self.codes), dtype=object)
        return self.values[self.codes]

    def tolist(self) -> list:
        return self.decode().tolist()

    def min(self):
        # Sorted dictionary: the smallest present code decodes to the
        # smallest present value.
        return self.values[self.codes.min()]

    def max(self):
        return self.values[self.codes.max()]


def coerce_array(kind: ColumnKind, values):
    """Coerce ``values`` into the storage representation for ``kind``.

    Numeric kinds return plain numpy arrays; STRING returns a
    dictionary-encoded :class:`EncodedColumn`.
    """
    if kind is ColumnKind.STRING:
        if isinstance(values, EncodedColumn):
            return values
        return EncodedColumn.encode(values)
    return np.asarray(values, dtype=kind.dtype)


def decoded(column) -> np.ndarray:
    """The plain-ndarray view of a column (decoding if dictionary-encoded)."""
    if isinstance(column, EncodedColumn):
        return column.decode()
    return column


def sort_key(column) -> np.ndarray:
    """An array whose ordering matches the column's value ordering.

    For encoded columns this is the int32 code array (valid because the
    dictionary is sorted), turning object-array comparison sorts into
    integer sorts.  Only meaningful *within* one column — codes from
    different dictionaries are not comparable; use :func:`decoded` there.
    """
    if isinstance(column, EncodedColumn):
        return column.codes
    return column


def concat_columns(parts: list):
    """Concatenate column parts, re-unifying dictionaries when encoded.

    Mixed-dictionary concatenation rebuilds one sorted union dictionary
    and remaps each part's codes through a searchsorted translation, so
    the invariant (sorted, duplicate-free dictionary) survives any
    sequence of concats.
    """
    if not any(isinstance(p, EncodedColumn) for p in parts):
        return np.concatenate(parts)
    parts = [p if isinstance(p, EncodedColumn) else EncodedColumn.encode(p) for p in parts]
    first_values = parts[0].values
    if all(p.values is first_values or np.array_equal(p.values, first_values) for p in parts[1:]):
        return EncodedColumn(np.concatenate([p.codes for p in parts]), first_values)
    union = np.unique(np.concatenate([p.values for p in parts]))
    remapped = [np.searchsorted(union, p.values).astype(np.int32)[p.codes] for p in parts]
    return EncodedColumn(np.concatenate(remapped), union)
