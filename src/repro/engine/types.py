"""Column types for the simulated analytical engine.

The engine is columnar and numpy-backed.  Each column has a logical kind
that determines its numpy dtype and its *accounting width* — the number of
bytes one value contributes to the simulated on-disk size of a table.  The
accounting width is what the DeepSea cost model sees; it is deliberately
decoupled from the in-memory representation so that string columns can be
stored as object arrays while still being charged a fixed width.
"""

from __future__ import annotations

import enum

import numpy as np


class ColumnKind(enum.Enum):
    """Logical type of a column."""

    INT64 = "int64"
    FLOAT64 = "float64"
    STRING = "string"

    @property
    def default_width(self) -> int:
        """Accounting width in bytes for one value of this kind."""
        if self is ColumnKind.STRING:
            return 32
        return 8

    @property
    def dtype(self) -> np.dtype:
        """The numpy dtype used to store values of this kind."""
        if self is ColumnKind.INT64:
            return np.dtype(np.int64)
        if self is ColumnKind.FLOAT64:
            return np.dtype(np.float64)
        return np.dtype(object)


def coerce_array(kind: ColumnKind, values) -> np.ndarray:
    """Coerce ``values`` into a numpy array of the dtype for ``kind``."""
    return np.asarray(values, dtype=kind.dtype)
