"""Named table catalog.

The catalog maps base-relation names to :class:`~repro.engine.table.Table`
instances.  Materialized views live in the pool (``repro.storage.pool``),
not here; the executor resolves ``Relation`` leaves against the catalog and
``MaterializedScan`` leaves against the pool.
"""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING

from repro.engine.table import Table
from repro.errors import CatalogError

if TYPE_CHECKING:
    from repro.storage.journal import PoolJournal

# Monotonic catalog identities for cross-query cache keys.  A plain
# counter — never ``id()``, which the allocator can reuse after a catalog
# is garbage collected, silently aliasing two different catalogs.
_CATALOG_UIDS = itertools.count(1)


class Catalog:
    """A registry of base tables.

    ``uid`` names this catalog instance process-uniquely and ``version``
    increments on every mutation; together they key the subplan result
    cache (:mod:`repro.engine.result_cache`) so an entry computed against
    one catalog state can never be served against another.
    """

    def __init__(self) -> None:
        self._tables: dict[str, Table] = {}
        self.uid: int = next(_CATALOG_UIDS)
        self.version: int = 0
        # Version numbers are drawn from this monotonic counter rather
        # than incrementing ``version`` directly: a journal rollback of an
        # aborted ingest restores ``version`` to its pre-transaction value
        # but never rewinds the counter, so a version stamped by the
        # aborted transaction can never be re-issued for different
        # content — cache entries (local and shared-tier) keyed on it are
        # stranded, not aliased.
        self._version_seq: int = 0
        # Cross-process identity for the shared cache tier: ``uid`` is a
        # process-local counter, so it cannot name "the same catalog" on
        # two pool workers.  Builders that deterministically reconstruct
        # identical content from a spec (the benchmark fixtures) stamp a
        # content-stable token here; None keeps this catalog out of the
        # shared tier entirely.
        self.shared_ident: "tuple | None" = None

    def _bump_version(self) -> None:
        self._version_seq += 1
        self.version = self._version_seq

    def register(self, name: str, table: Table) -> None:
        if name in self._tables:
            raise CatalogError(f"table already registered: {name!r}")
        self._tables[name] = table
        self._bump_version()

    def replace(self, name: str, table: Table) -> None:
        """Register or overwrite (used by tests and workload rescaling)."""
        self._tables[name] = table
        self._bump_version()

    # ------------------------------------------------------------------
    # Incremental ingest (micro-batch appends)
    # ------------------------------------------------------------------
    def batch_table(self, name: str, rows: "Table | dict") -> Table:
        """Coerce a micro-batch into a table appendable to ``name``.

        A dict of column sequences is built against the base table's
        schema; either form inherits the base *scale* so ``size_bytes``
        accounting stays consistent across the append.
        """
        base = self.get(name)
        if isinstance(rows, Table):
            if rows.schema.names != base.schema.names:
                raise CatalogError(
                    f"batch schema {rows.schema.names} does not match "
                    f"{name!r} schema {base.schema.names}"
                )
            if rows.scale == base.scale:
                return rows
            return Table(rows.schema, dict(rows.columns), base.scale)
        return Table.from_dict(base.schema, rows, scale=base.scale)

    def ingest(
        self, name: str, rows: "Table | dict", *, journal: "PoolJournal | None" = None
    ) -> Table:
        """Append a micro-batch to base table ``name`` and bump the version.

        The append is copy-on-write: the prior table object is never
        mutated (readers holding a reference — snapshot leases, cached
        fixtures sharing the catalog's tables — keep their rows), a fresh
        concatenated table is installed in its place.  When ``journal``
        has an open transaction the pre-batch table and version are logged
        first (WAL discipline), so a crash mid-ingest rolls the catalog
        back exactly.  Returns the batch as appended.
        """
        base = self.get(name)
        batch = self.batch_table(name, rows)
        if journal is not None:
            journal.record_ingest(self, name, base, self.version)
        self._tables[name] = Table.concat_many([base, batch])
        self._bump_version()
        return batch

    def fork(self, shared_ident: "tuple | None" = None) -> "Catalog":
        """An independent catalog holding the same (immutable) tables.

        Ingest benchmarks and determinism tasks append to *forks* of the
        shared benchmark fixtures: tables are never mutated in place
        (``ingest`` installs fresh concatenations), so sharing the table
        objects is safe, while versions and registrations diverge freely.
        The fork gets its own ``uid`` and starts with this catalog's
        version counter, so pre-fork cache entries cannot alias post-fork
        content.  ``shared_ident`` should be a content-stable tuple when
        the fork's mutation sequence is deterministic, else ``None``.
        """
        fork = Catalog()
        fork._tables = dict(self._tables)
        fork.version = self.version
        fork._version_seq = self._version_seq
        fork.shared_ident = shared_ident
        return fork

    def rollback_ingest(self, name: str, table: Table, version: int) -> None:
        """Undo one journaled append: re-install the pre-batch table and
        version (the version *counter* is deliberately left alone)."""
        self._tables[name] = table
        self.version = version

    def get(self, name: str) -> Table:
        try:
            return self._tables[name]
        except KeyError:
            raise CatalogError(f"unknown table: {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._tables

    @property
    def names(self) -> list[str]:
        return sorted(self._tables)

    @property
    def total_size_bytes(self) -> float:
        """Combined nominal size of all base tables."""
        return sum(t.size_bytes for t in self._tables.values())
