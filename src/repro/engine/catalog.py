"""Named table catalog.

The catalog maps base-relation names to :class:`~repro.engine.table.Table`
instances.  Materialized views live in the pool (``repro.storage.pool``),
not here; the executor resolves ``Relation`` leaves against the catalog and
``MaterializedScan`` leaves against the pool.
"""

from __future__ import annotations

import itertools

from repro.engine.table import Table
from repro.errors import CatalogError

# Monotonic catalog identities for cross-query cache keys.  A plain
# counter — never ``id()``, which the allocator can reuse after a catalog
# is garbage collected, silently aliasing two different catalogs.
_CATALOG_UIDS = itertools.count(1)


class Catalog:
    """A registry of base tables.

    ``uid`` names this catalog instance process-uniquely and ``version``
    increments on every mutation; together they key the subplan result
    cache (:mod:`repro.engine.result_cache`) so an entry computed against
    one catalog state can never be served against another.
    """

    def __init__(self) -> None:
        self._tables: dict[str, Table] = {}
        self.uid: int = next(_CATALOG_UIDS)
        self.version: int = 0
        # Cross-process identity for the shared cache tier: ``uid`` is a
        # process-local counter, so it cannot name "the same catalog" on
        # two pool workers.  Builders that deterministically reconstruct
        # identical content from a spec (the benchmark fixtures) stamp a
        # content-stable token here; None keeps this catalog out of the
        # shared tier entirely.
        self.shared_ident: "tuple | None" = None

    def register(self, name: str, table: Table) -> None:
        if name in self._tables:
            raise CatalogError(f"table already registered: {name!r}")
        self._tables[name] = table
        self.version += 1

    def replace(self, name: str, table: Table) -> None:
        """Register or overwrite (used by tests and workload rescaling)."""
        self._tables[name] = table
        self.version += 1

    def get(self, name: str) -> Table:
        try:
            return self._tables[name]
        except KeyError:
            raise CatalogError(f"unknown table: {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._tables

    @property
    def names(self) -> list[str]:
        return sorted(self._tables)

    @property
    def total_size_bytes(self) -> float:
        """Combined nominal size of all base tables."""
        return sum(t.size_bytes for t in self._tables.values())
