"""Columnar, numpy-backed tables with late-materialized selection views.

A :class:`Table` holds one numpy array per column plus a *scale factor*.
The scale factor maps in-memory rows to the nominal dataset size the table
represents: the paper evaluates on 100 GB / 500 GB BigBench instances,
which this reproduction models with a few hundred thousand rows.  A table
generated to stand in for a 100 GB instance carries ``scale`` such that
``size_bytes`` reports the nominal (simulated) size.  All cost-model
accounting uses ``size_bytes``; all query answers use the actual rows.

Row-level operators (``filter``/``take``) do not copy column data: they
return a :class:`TableView` — a selection vector (row-index array) over
the root table, with per-column gathers deferred until a column is
actually touched and cached once gathered.  A ``Select→Project→Join``
chain therefore materializes each payload column exactly once, at the
join gather or at an explicit :meth:`materialize` boundary (capture,
pickling, simulated-disk writes).  Views promote the old ``_lineage``
acceleration hint into the primary representation; the hint itself is
still maintained so the join-probe caches keep working unchanged.

Tables are immutable by convention: operators return new tables and never
mutate column arrays in place.  ``ColumnKind.STRING`` columns are stored
dictionary-encoded (:class:`~repro.engine.types.EncodedColumn`); decoding
happens only in :meth:`to_rows` and at pickle boundaries.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.engine.schema import Schema
from repro.engine.types import (
    ColumnKind,
    EncodedColumn,
    coerce_array,
    concat_columns,
    decoded,
    sort_key,
)
from repro.errors import SchemaError

# Module-level switch for the zero-copy path.  The eager path is kept
# (a) as the reference implementation for the equivalence property tests
# and (b) as an escape hatch; both paths produce bit-identical rows,
# ledgers, and lineage.
_LAZY_VIEWS = True


def set_lazy_views(enabled: bool) -> bool:
    """Toggle late materialization; returns the previous setting."""
    global _LAZY_VIEWS
    previous = _LAZY_VIEWS
    _LAZY_VIEWS = enabled
    return previous


def lazy_views_enabled() -> bool:
    return _LAZY_VIEWS


@dataclass(eq=False)
class Table:
    """An immutable columnar table.

    Attributes:
        schema: Column definitions; order defines row layout.
        columns: Mapping from column name to a numpy array (or
            :class:`EncodedColumn` for STRING columns). All columns must
            have equal length.
        scale: Multiplier applied when converting actual in-memory bytes
            to nominal (simulated) bytes.

    ``eq=False`` keeps identity comparison and hashing: tables are compared
    by content only in tests (via :meth:`sorted_rows`), while the engine's
    index caches key on table *identity* — immutable tables make identity a
    sound cache key, and weak references make it self-invalidating.
    """

    schema: Schema
    columns: dict[str, np.ndarray]
    scale: float = 1.0
    _nrows: int = field(init=False, repr=False)

    def __post_init__(self) -> None:
        names = set(self.schema.names)
        if set(self.columns) != names:
            raise SchemaError(f"columns {sorted(self.columns)} do not match schema {sorted(names)}")
        lengths = {len(arr) for arr in self.columns.values()}
        if len(lengths) > 1:
            raise SchemaError(f"ragged columns: lengths {sorted(lengths)}")
        self._nrows = lengths.pop() if lengths else 0
        # Normalize STRING columns to the dictionary-encoded form so every
        # downstream kernel can rely on integer codes.  Numeric columns
        # pass through untouched.
        for col in self.schema.columns:
            if col.kind is ColumnKind.STRING:
                value = self.columns[col.name]
                if not isinstance(value, EncodedColumn):
                    self.columns[col.name] = EncodedColumn.encode(value)
        # Row lineage: (root table, row indices into root | None for "all
        # rows in order", monotonic flag).  Set by filter/take/project so
        # the join-key probe cache (repro.engine.indexes) can reuse
        # per-root-table binary-search results across queries.  The flag
        # records that the row indices are strictly increasing (pure
        # selections), which build-side index derivation relies on.
        # Purely an acceleration hint — never consulted for semantics.
        self._lineage: "tuple[Table, np.ndarray | None, bool] | None" = None

    def __getstate__(self) -> dict:
        """Pickle without lineage and with strings decoded.

        Lineage is an in-process acceleration hint: it points at the
        *root* table a selection came from, so pickling it would drag the
        full base relation across every process boundary (the parallel
        runner ships result tables back from pool workers).  Dropping it
        only means a restored table starts cache-cold.  Dictionary-encoded
        columns are decoded to plain object arrays — the wire format stays
        representation-independent — and re-encoded on restore; both
        directions are deterministic, so semantics and ``size_bytes`` are
        untouched.
        """
        state = dict(self.__dict__)
        state["_lineage"] = None
        state["columns"] = {name: decoded(col) for name, col in self.columns.items()}
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        for col in self.schema.columns:
            if col.kind is ColumnKind.STRING:
                value = self.columns[col.name]
                if not isinstance(value, EncodedColumn):
                    self.columns[col.name] = EncodedColumn.encode(value)

    def _derived_lineage(
        self, rows: "np.ndarray | None", monotonic: bool
    ) -> "tuple[Table, np.ndarray | None, bool]":
        """Lineage for a table selecting ``rows`` (None = all) of ``self``."""
        if self._lineage is None:
            return (self, rows, monotonic)
        root, own_rows, own_mono = self._lineage
        if own_rows is None:
            return (root, rows, own_mono and monotonic)
        if rows is None:
            return (root, own_rows, own_mono and monotonic)
        return (root, own_rows[rows], own_mono and monotonic)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_dict(cls, schema: Schema, data: dict, scale: float = 1.0) -> "Table":
        """Build a table from plain Python sequences, coercing dtypes."""
        cols = {col.name: coerce_array(col.kind, data[col.name]) for col in schema.columns}
        return cls(schema, cols, scale)

    @classmethod
    def empty(cls, schema: Schema, scale: float = 1.0) -> "Table":
        cols = {col.name: coerce_array(col.kind, []) for col in schema.columns}
        return cls(schema, cols, scale)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def nrows(self) -> int:
        return self._nrows

    @property
    def size_bytes(self) -> float:
        """Nominal (simulated) size of this table in bytes."""
        return self._nrows * self.schema.row_bytes * self.scale

    def memory_bytes(self) -> int:
        """Actual in-process bytes held by this table's own arrays.

        Used by byte-bounded caches; an estimate, not an accounting
        quantity (never feeds the simulated ledgers).
        """
        return int(sum(col.nbytes for col in self.columns.values()))

    def column(self, name: str) -> np.ndarray:
        try:
            return self.columns[name]
        except KeyError:
            raise SchemaError(f"no such column: {name!r}") from None

    def materialize(self) -> "Table":
        """This table with every column gathered (no-op for plain tables)."""
        return self

    # ------------------------------------------------------------------
    # Row-level operations (all return new tables)
    # ------------------------------------------------------------------
    def _select_rows(self, rows: np.ndarray, monotonic: bool) -> "Table":
        """Rows at ``rows`` — a TableView when lazy, a copy otherwise."""
        if _LAZY_VIEWS:
            return TableView(self, self.schema, rows, monotonic)
        cols = {name: arr[rows] for name, arr in self.columns.items()}
        out = Table(self.schema, cols, self.scale)
        out._lineage = self._derived_lineage(rows, monotonic)
        return out

    def filter(self, mask: np.ndarray) -> "Table":
        """Rows where ``mask`` is true.

        On the lazy path the view keeps the boolean mask itself and
        defers ``np.flatnonzero`` until row *indices* are actually needed
        (index composition, lineage, gather plans).  A filter that is
        only counted, re-filtered (masks AND together), or gathered once
        never pays for the index conversion.
        """
        if _LAZY_VIEWS:
            return TableView(self, self.schema, None, True, _mask=np.asarray(mask, dtype=bool))
        return self._select_rows(np.flatnonzero(mask), True)

    def take(self, indices: np.ndarray) -> "Table":
        """Rows at ``indices`` (with repetition allowed)."""
        return self._select_rows(np.asarray(indices), False)

    def project(self, names: tuple[str, ...] | list[str]) -> "Table":
        """Restrict to the given columns, in order.

        Always zero-copy: the projected table shares the parent's column
        arrays (plain tables) or its selection vector (views).
        """
        schema = self.schema.subset(tuple(names))
        cols = {name: self.columns[name] for name in names}
        out = Table(schema, cols, self.scale)
        out._lineage = self._derived_lineage(None, True)
        return out

    def concat(self, other: "Table") -> "Table":
        """Vertical concatenation; schemas must have identical names."""
        return Table.concat_many([self, other])

    @classmethod
    def concat_many(cls, tables: "list[Table]") -> "Table":
        """Vertical concatenation of any number of tables in one pass.

        Unlike folding pairwise concat (which copies the growing prefix
        once per piece, O(n²) bytes moved), this allocates each output
        column exactly once.  Column values and row order are identical
        to the pairwise fold.  Views gather each needed column once.
        """
        if not tables:
            raise SchemaError("concat_many requires at least one table")
        first = tables[0]
        if len(tables) == 1:
            return first
        for other in tables[1:]:
            if other.schema.names != first.schema.names:
                raise SchemaError("cannot concat tables with different schemas")
        cols = {
            name: concat_columns([t.column(name) for t in tables])
            for name in first.schema.names
        }
        return Table(first.schema, cols, max(t.scale for t in tables))

    def distinct(self) -> "Table":
        """Remove duplicate rows (used for overlapping-fragment unions)."""
        if self._nrows == 0:
            return self
        # sort_key: encoded string columns sort by their int32 codes —
        # bit-identical row order to sorting decoded values, because the
        # dictionary is sorted.
        keys = [sort_key(self.column(n)) for n in self.schema.names]
        order = np.lexsort(keys[::-1])
        keep = np.ones(self._nrows, dtype=bool)
        same_as_prev = np.ones(self._nrows - 1, dtype=bool)
        for arr in keys:
            s = arr[order]
            same_as_prev &= s[1:] == s[:-1]
        keep[1:] = ~same_as_prev
        return self.take(order[keep])

    # ------------------------------------------------------------------
    # Test helpers
    # ------------------------------------------------------------------
    def to_rows(self) -> list[tuple]:
        """Materialize as a list of row tuples (tests only)."""
        arrays = [decoded(self.column(name)) for name in self.schema.names]
        return list(zip(*(arr.tolist() for arr in arrays))) if arrays else []

    def sorted_rows(self) -> list[tuple]:
        """Rows sorted canonically, for multiset comparison in tests."""
        return sorted(self.to_rows(), key=repr)


class TableView(Table):
    """A late-materialized row selection over a root :class:`Table`.

    Holds ``(root, rows)`` — a selection vector into a *plain* (non-view)
    root table — plus the view's own (possibly narrowed) schema.  Column
    gathers happen on first access via :meth:`column` and are cached, so
    chained ``filter``/``take``/``project`` calls compose selections
    instead of copying payload columns.  Semantically a ``TableView`` is
    indistinguishable from the eager table it stands for; every operator
    accepts either.

    The selection is held in one of two forms.  A view built by
    :meth:`Table.filter` starts as a *boolean mask* over the root; the
    row-index array (``np.flatnonzero``) is derived lazily, only when
    something genuinely needs indices — index composition under
    ``take``, lineage for the join-probe caches, a :meth:`gather_plan`.
    Counting rows (``np.count_nonzero``), refining with another filter
    (mask write-back, no index math), and single-column gathers all work
    straight off the mask.  Both forms produce bit-identical gathers.
    """

    def __init__(
        self,
        root: Table,
        schema: Schema,
        rows: "np.ndarray | None",
        monotonic: bool,
        _cache: "dict[str, np.ndarray] | None" = None,
        _mask: "np.ndarray | None" = None,
    ):
        # Deliberately does not call the dataclass __init__: a view has
        # no columns dict of its own.
        self.schema = schema
        self.scale = root.scale
        self._root = root
        self._rows_arr = rows
        self._mask = _mask
        self._monotonic = monotonic
        self._nrows = len(rows) if rows is not None else int(np.count_nonzero(_mask))
        self._gathered = {} if _cache is None else _cache
        self._lineage_cache: "tuple[Table, np.ndarray | None, bool] | None" = None

    @property
    def _rows(self) -> np.ndarray:
        """The selection as row indices, derived from the mask on demand."""
        rows = self._rows_arr
        if rows is None:
            rows = self._rows_arr = np.flatnonzero(self._mask)
        return rows

    @property
    def _lineage(self) -> "tuple[Table, np.ndarray | None, bool]":
        # Lazy for the same reason as ``_rows``: lineage carries row
        # indices, so building it eagerly would defeat mask deferral.
        if self._lineage_cache is None:
            self._lineage_cache = self._root._derived_lineage(self._rows, self._monotonic)
        return self._lineage_cache

    def __repr__(self) -> str:  # dataclass __repr__ would materialize
        return (
            f"TableView(nrows={self._nrows}, schema={self.schema.names}, "
            f"root_nrows={self._root.nrows})"
        )

    # -- materialization ------------------------------------------------
    @property
    def columns(self) -> dict[str, np.ndarray]:
        """Materialized column dict (gathers every schema column)."""
        return {name: self.column(name) for name in self.schema.names}

    def column(self, name: str) -> np.ndarray:
        # Membership check first: the gather cache may be shared with a
        # wider projection of the same selection vector.
        if name not in self.schema:
            raise SchemaError(f"no such column: {name!r}")
        arr = self._gathered.get(name)
        if arr is None:
            # Boolean-mask and row-index gathers are bit-identical; use
            # whichever form the selection is already in — except from
            # the second gathered column on, where the mask is converted
            # to indices once so every further gather costs O(kept rows)
            # instead of another full-mask scan (concat and aggregate
            # materialize several columns of the same view back to back).
            sel = self._rows_arr
            if sel is None:
                sel = self._rows if self._gathered else self._mask
            arr = self._root.columns[name][sel]
            self._gathered[name] = arr
        return arr

    def materialize(self) -> Table:
        out = Table(self.schema, self.columns, self.scale)
        out._lineage = self._lineage
        return out

    def memory_bytes(self) -> int:
        own = int(self._rows_arr.nbytes) if self._rows_arr is not None else int(self._mask.nbytes)
        own += int(sum(col.nbytes for col in self._gathered.values()))
        return own

    def gather_plan(self) -> "tuple[Table, np.ndarray]":
        """The ``(source, indices)`` pair a consumer can gather from
        directly — lets joins fuse the selection vector into their own
        output gather so each payload column is touched exactly once."""
        return self._root, self._rows

    def __reduce__(self):
        # Views never cross a pickle boundary as views: ship the decoded,
        # materialized state (the root may be an entire base relation).
        plain = {name: decoded(self.column(name)) for name in self.schema.names}
        return (_unpickle_table, (self.schema, plain, self.scale))

    # -- row-level operations -------------------------------------------
    def filter(self, mask: np.ndarray) -> Table:
        mask = np.asarray(mask, dtype=bool)
        if _LAZY_VIEWS and self._rows_arr is None:
            # Mask refinement: write the narrower selection back into the
            # root-level mask — no flatnonzero, no index composition.  A
            # mask-built view is always monotonic, so the result is too.
            combined = self._mask.copy()
            combined[self._mask] = mask
            return TableView(self._root, self.schema, None, True, _mask=combined)
        return self._select_rows(np.flatnonzero(mask), True)

    def _select_rows(self, rows: np.ndarray, monotonic: bool) -> Table:
        composed = self._rows[rows]
        mono = monotonic and self._monotonic
        if _LAZY_VIEWS:
            return TableView(self._root, self.schema, composed, mono)
        cols = {name: self._root.columns[name][composed] for name in self.schema.names}
        out = Table(self.schema, cols, self.scale)
        out._lineage = self._root._derived_lineage(composed, mono)
        return out

    def project(self, names: tuple[str, ...] | list[str]) -> Table:
        schema = self.schema.subset(tuple(names))
        # Same selection (in whichever form it currently has), narrower
        # schema; the gather cache is shared so a column materialized
        # through either view is gathered at most once.
        return TableView(
            self._root,
            schema,
            self._rows_arr,
            self._monotonic,
            _cache=self._gathered,
            _mask=self._mask,
        )


class JoinView(Table):
    """A late-materialized equi-join output: two gather sides, one row space.

    Every output row is a pair ``(left source row, right source row)``;
    the view holds the two index arrays plus a name→side map, and gathers
    an output column from its side's source on first access.  A
    ``Join→Project→Aggregate`` chain therefore touches only the columns
    the aggregate actually consumes — columns projected away are never
    gathered at all.

    ``filter``/``take`` compose row selections into both index arrays
    (two integer gathers, no payload copies); ``project`` narrows the
    schema and shares the gather cache.  Like the seed's eager join
    output, a ``JoinView`` is a fresh root for lineage purposes.
    """

    def __init__(
        self,
        schema: Schema,
        scale: float,
        sides: "list[tuple[Table, np.ndarray]]",
        side_of: dict[str, int],
        _cache: "dict[str, np.ndarray] | None" = None,
    ):
        self.schema = schema
        self.scale = scale
        self._sides = sides
        self._side_of = side_of
        self._nrows = len(sides[0][1])
        self._gathered = {} if _cache is None else _cache
        self._lineage = None

    def __repr__(self) -> str:
        return f"JoinView(nrows={self._nrows}, schema={self.schema.names})"

    @property
    def columns(self) -> dict[str, np.ndarray]:
        return {name: self.column(name) for name in self.schema.names}

    def column(self, name: str) -> np.ndarray:
        if name not in self.schema:
            raise SchemaError(f"no such column: {name!r}")
        arr = self._gathered.get(name)
        if arr is None:
            source, rows = self._sides[self._side_of[name]]
            arr = source.column(name)[rows]
            self._gathered[name] = arr
        return arr

    def materialize(self) -> Table:
        return Table(self.schema, self.columns, self.scale)

    def memory_bytes(self) -> int:
        own = int(sum(rows.nbytes for _, rows in self._sides))
        own += int(sum(col.nbytes for col in self._gathered.values()))
        return own

    def __reduce__(self):
        plain = {name: decoded(self.column(name)) for name in self.schema.names}
        return (_unpickle_table, (self.schema, plain, self.scale))

    def _select_rows(self, rows: np.ndarray, monotonic: bool) -> Table:
        if _LAZY_VIEWS:
            sides = [(source, idx[rows]) for source, idx in self._sides]
            return JoinView(self.schema, self.scale, sides, self._side_of)
        cols = {name: self.column(name)[rows] for name in self.schema.names}
        return Table(self.schema, cols, self.scale)

    def project(self, names: tuple[str, ...] | list[str]) -> Table:
        schema = self.schema.subset(tuple(names))
        return JoinView(schema, self.scale, self._sides, self._side_of, _cache=self._gathered)


def _unpickle_table(schema: Schema, columns: dict, scale: float) -> Table:
    return Table(schema, columns, scale)
