"""Columnar, numpy-backed tables.

A :class:`Table` holds one numpy array per column plus a *scale factor*.
The scale factor maps in-memory rows to the nominal dataset size the table
represents: the paper evaluates on 100 GB / 500 GB BigBench instances,
which this reproduction models with a few hundred thousand rows.  A table
generated to stand in for a 100 GB instance carries ``scale`` such that
``size_bytes`` reports the nominal (simulated) size.  All cost-model
accounting uses ``size_bytes``; all query answers use the actual rows.

Tables are immutable by convention: operators return new tables and never
mutate column arrays in place.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.engine.schema import Schema
from repro.engine.types import coerce_array
from repro.errors import SchemaError


@dataclass(eq=False)
class Table:
    """An immutable columnar table.

    Attributes:
        schema: Column definitions; order defines row layout.
        columns: Mapping from column name to a numpy array. All arrays
            must have equal length.
        scale: Multiplier applied when converting actual in-memory bytes
            to nominal (simulated) bytes.

    ``eq=False`` keeps identity comparison and hashing: tables are compared
    by content only in tests (via :meth:`sorted_rows`), while the engine's
    index caches key on table *identity* — immutable tables make identity a
    sound cache key, and weak references make it self-invalidating.
    """

    schema: Schema
    columns: dict[str, np.ndarray]
    scale: float = 1.0
    _nrows: int = field(init=False, repr=False)

    def __post_init__(self) -> None:
        names = set(self.schema.names)
        if set(self.columns) != names:
            raise SchemaError(
                f"columns {sorted(self.columns)} do not match schema {sorted(names)}"
            )
        lengths = {len(arr) for arr in self.columns.values()}
        if len(lengths) > 1:
            raise SchemaError(f"ragged columns: lengths {sorted(lengths)}")
        self._nrows = lengths.pop() if lengths else 0
        # Row lineage: (root table, row indices into root | None for "all
        # rows in order", monotonic flag).  Set by filter/take/project so
        # the join-key probe cache (repro.engine.indexes) can reuse
        # per-root-table binary-search results across queries.  The flag
        # records that the row indices are strictly increasing (pure
        # selections), which build-side index derivation relies on.
        # Purely an acceleration hint — never consulted for semantics.
        self._lineage: "tuple[Table, np.ndarray | None, bool] | None" = None

    def __getstate__(self) -> dict:
        """Pickle without lineage.

        Lineage is an in-process acceleration hint: it points at the
        *root* table a selection came from, so pickling it would drag the
        full base relation across every process boundary (the parallel
        runner ships result tables back from pool workers).  Dropping it
        only means a restored table starts cache-cold — semantics and
        ``size_bytes`` are untouched.
        """
        state = dict(self.__dict__)
        state["_lineage"] = None
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)

    def _derived_lineage(
        self, rows: "np.ndarray | None", monotonic: bool
    ) -> "tuple[Table, np.ndarray | None, bool]":
        """Lineage for a table selecting ``rows`` (None = all) of ``self``."""
        if self._lineage is None:
            return (self, rows, monotonic)
        root, own_rows, own_mono = self._lineage
        if own_rows is None:
            return (root, rows, own_mono and monotonic)
        if rows is None:
            return (root, own_rows, own_mono and monotonic)
        return (root, own_rows[rows], own_mono and monotonic)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_dict(cls, schema: Schema, data: dict, scale: float = 1.0) -> "Table":
        """Build a table from plain Python sequences, coercing dtypes."""
        cols = {
            col.name: coerce_array(col.kind, data[col.name]) for col in schema.columns
        }
        return cls(schema, cols, scale)

    @classmethod
    def empty(cls, schema: Schema, scale: float = 1.0) -> "Table":
        cols = {col.name: coerce_array(col.kind, []) for col in schema.columns}
        return cls(schema, cols, scale)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def nrows(self) -> int:
        return self._nrows

    @property
    def size_bytes(self) -> float:
        """Nominal (simulated) size of this table in bytes."""
        return self._nrows * self.schema.row_bytes * self.scale

    def column(self, name: str) -> np.ndarray:
        try:
            return self.columns[name]
        except KeyError:
            raise SchemaError(f"no such column: {name!r}") from None

    # ------------------------------------------------------------------
    # Row-level operations (all return new tables)
    # ------------------------------------------------------------------
    def filter(self, mask: np.ndarray) -> "Table":
        """Rows where ``mask`` is true."""
        rows = np.flatnonzero(mask)
        cols = {name: arr[rows] for name, arr in self.columns.items()}
        out = Table(self.schema, cols, self.scale)
        out._lineage = self._derived_lineage(rows, True)
        return out

    def take(self, indices: np.ndarray) -> "Table":
        """Rows at ``indices`` (with repetition allowed)."""
        cols = {name: arr[indices] for name, arr in self.columns.items()}
        out = Table(self.schema, cols, self.scale)
        out._lineage = self._derived_lineage(np.asarray(indices), False)
        return out

    def project(self, names: tuple[str, ...] | list[str]) -> "Table":
        """Restrict to the given columns, in order."""
        schema = self.schema.subset(tuple(names))
        cols = {name: self.columns[name] for name in names}
        out = Table(schema, cols, self.scale)
        out._lineage = self._derived_lineage(None, True)
        return out

    def concat(self, other: "Table") -> "Table":
        """Vertical concatenation; schemas must have identical names."""
        if self.schema.names != other.schema.names:
            raise SchemaError("cannot concat tables with different schemas")
        cols = {
            name: np.concatenate([self.columns[name], other.columns[name]])
            for name in self.schema.names
        }
        return Table(self.schema, cols, max(self.scale, other.scale))

    @classmethod
    def concat_many(cls, tables: "list[Table]") -> "Table":
        """Vertical concatenation of any number of tables in one pass.

        Unlike folding :meth:`concat` pairwise (which copies the growing
        prefix once per piece, O(n²) bytes moved), this allocates each
        output column exactly once.  Column values and row order are
        identical to the pairwise fold.
        """
        if not tables:
            raise SchemaError("concat_many requires at least one table")
        first = tables[0]
        if len(tables) == 1:
            return first
        for other in tables[1:]:
            if other.schema.names != first.schema.names:
                raise SchemaError("cannot concat tables with different schemas")
        cols = {
            name: np.concatenate([t.columns[name] for t in tables])
            for name in first.schema.names
        }
        return cls(first.schema, cols, max(t.scale for t in tables))

    def distinct(self) -> "Table":
        """Remove duplicate rows (used for overlapping-fragment unions)."""
        if self._nrows == 0:
            return self
        order = np.lexsort([self.columns[n] for n in reversed(self.schema.names)])
        keep = np.ones(self._nrows, dtype=bool)
        sorted_cols = [self.columns[n][order] for n in self.schema.names]
        same_as_prev = np.ones(self._nrows - 1, dtype=bool)
        for arr in sorted_cols:
            same_as_prev &= arr[1:] == arr[:-1]
        keep[1:] = ~same_as_prev
        return self.take(order[keep])

    # ------------------------------------------------------------------
    # Test helpers
    # ------------------------------------------------------------------
    def to_rows(self) -> list[tuple]:
        """Materialize as a list of row tuples (tests only)."""
        arrays = [self.columns[name] for name in self.schema.names]
        return list(zip(*(arr.tolist() for arr in arrays))) if arrays else []

    def sorted_rows(self) -> list[tuple]:
        """Rows sorted canonically, for multiset comparison in tests."""
        return sorted(self.to_rows(), key=repr)
