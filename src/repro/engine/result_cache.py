"""Cross-query subplan result cache (Nectar/Shark-style reuse, wall-clock only).

Workloads repeat themselves: the SDSS-mapped benchmark maps thousands of
log entries onto a handful of query templates, so the same pushed-down
plan — byte-for-byte the same :class:`~repro.query.algebra.Plan` object
graph — executes over and over against an unchanged catalog.  This cache
remembers whole-plan executions ``(result table, ledger charges)`` and
replays them, skipping the numpy evaluation entirely.

The cache is **wall-clock only**: a hit merges the *recorded simulated
charges* into the caller's ledger, so simulated seconds, map tasks, and
byte counters are identical to re-executing the plan.  DeepSea's
economics (what a query "costs" the modeled cluster) are never shortcut —
only the real CPU time of recomputing an identical answer is.

Safety rules (each mechanically enforced at lookup/store time):

* **Keying** — entries key on the memoized plan hash plus the catalog's
  ``(uid, version)``; plans containing a ``MaterializedScan`` leaf
  additionally key on the pool uid and the **per-view cover versions** of
  exactly the views the plan reads (its version vector).
  :class:`~repro.storage.pool.MaterializedViewPool` bumps a view's cover
  version on every admit/evict/rollback-restore touching it, so a stale
  fragment read can never be served — while mutations to *other* views
  leave the entry's vector unchanged and the entry live (the pool-wide
  epoch key this replaces flushed everything on any mutation).  The
  :class:`~repro.engine.cost.ClusterSpec` joins the key because the
  recorded charges embed its constants.
* **Pristine ledgers only** — replay adds recorded charges into the
  caller's ledger.  Starting from exact zero (``0.0 + x == x``) is the
  one case where the merged floats are bit-identical to re-running the
  individual charges, so only executions that both start *and* replay
  from a pristine ledger participate (the per-query ledgers DeepSea
  creates always qualify).
* **No fault injection** — a faulted ledger draws RNG inside every
  ``charge_read`` and may trigger recovery writes; skipping execution
  would desynchronize the fault stream.  Faulted runs bypass the cache.
* **No captures** — ``execute_with_capture`` with live targets must
  actually evaluate the tree to snapshot intermediates.

Entries are byte-bounded (in-process array bytes, LRU eviction) and the
cache registers with :mod:`repro.caches`, so hit/miss/eviction counters
surface in ``python -m repro profile`` and pool workers start cache-cold
exactly like every other acceleration cache.
"""

from __future__ import annotations

import pickle
import threading
from collections import OrderedDict
from typing import TYPE_CHECKING

from repro.caches import register_cache
from repro.engine.cost import CostLedger
from repro.engine.table import Table
from repro.parallel import shared_cache

if TYPE_CHECKING:
    from repro.engine.executor import ExecutionContext
    from repro.query.algebra import Plan
    from repro.query.analysis import PlanAnalysis

# Default byte budget for cached result tables.  Results are almost
# always small aggregate outputs; the bound exists so a pathological
# workload of huge select-only results cannot grow without limit.
DEFAULT_MAX_BYTES = 256 * 1024 * 1024


class _Entry:
    __slots__ = ("table", "charges", "nbytes")

    def __init__(self, table: Table, charges: CostLedger, nbytes: int):
        self.table = table
        self.charges = charges
        self.nbytes = nbytes


class ResultCache:
    """LRU, byte-bounded map from plan keys to (table, recorded charges)."""

    def __init__(self, max_bytes: int = DEFAULT_MAX_BYTES):
        self.max_bytes = max_bytes
        self._entries: "OrderedDict[tuple, _Entry]" = OrderedDict()
        self._bytes = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        # The serving layer runs reader threads against the one GLOBAL
        # cache; LRU bookkeeping (move_to_end + the eviction loop) is a
        # compound mutation, so lookup/store/clear take this lock.  The
        # serial engine pays one uncontended acquire per query — noise.
        self._lock = threading.Lock()

    # -- keying --------------------------------------------------------
    @staticmethod
    def key_for(
        plan: "Plan", analysis: "PlanAnalysis", context: "ExecutionContext"
    ) -> "tuple | None":
        """Cache key for running ``plan`` under ``context`` — or ``None``
        when the execution is not cacheable (pool-reading plan without a
        pool attached).

        Plans that never touch the pool deliberately omit the pool
        component: their results are pool-independent, so H's direct
        plans and the identical unrewritten plans of NP/DS share entries.

        Pool-reading plans key on a **version vector**: the cover version
        of each view the plan's ``MaterializedScan`` leaves read (sorted
        view-id order), not the pool-wide epoch.  Admitting, evicting, or
        repartitioning fragments of view V bumps only V's cover version,
        so entries for plans reading disjoint views stay live across the
        mutation — and a journal rollback, which restores the prior
        version numbers, re-validates pre-transaction entries for free.
        """
        if analysis.has_materialized:
            pool = context.pool
            if pool is None:
                return None
            pool_key = (
                pool.uid,
                tuple(pool.cover_version(view_id) for view_id in analysis.view_ids),
                analysis.view_ids,
            )
        else:
            pool_key = None
        catalog = context.catalog
        return (catalog.uid, catalog.version, pool_key, context.cluster, plan)

    @staticmethod
    def shared_parts(
        plan: "Plan", analysis: "PlanAnalysis", context: "ExecutionContext"
    ) -> "tuple | None":
        """``(key_bytes, version_token)`` for the cross-worker shared tier,
        or ``None`` when this execution may not use it.

        The shared tier splits :meth:`key_for` into an *identity* (hashed
        into the key) and the *versions* it was computed at (the token a
        ``get`` must match exactly).  Identity swaps the process-local
        ``catalog.uid`` / ``pool.uid`` counters for the content-stable
        ``shared_ident`` stamped by fixture builders — two workers that
        deterministically rebuilt the same spec carry the same ident, two
        different fixtures never do.  Executions whose catalog or pool
        carries no ident simply skip the tier.
        """
        catalog = context.catalog
        catalog_ident = getattr(catalog, "shared_ident", None)
        if catalog_ident is None:
            return None
        if analysis.has_materialized:
            pool = context.pool
            if pool is None:
                return None
            pool_ident = getattr(pool, "shared_ident", None)
            if pool_ident is None:
                return None
            pool_part = (pool_ident, analysis.view_ids)
            versions = tuple(
                pool.cover_version(view_id) for view_id in analysis.view_ids
            )
        else:
            pool_part = None
            versions = None
        key = shared_cache.stable_key(
            "result", (catalog_ident, pool_part, context.cluster, plan)
        )
        return (key, (catalog.version, versions))

    # -- lookup/store --------------------------------------------------
    def lookup(self, key: tuple) -> "_Entry | None":
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return entry

    def lookup_through(self, key: tuple, shared: "tuple | None" = None) -> "_Entry | None":
        """Local lookup falling through to the shared tier on a miss.

        A shared hit is unpickled and installed locally (so repeats skip
        the round trip) — except for ``prefer_shared`` clients (the
        serving layer's reader threads), which consult the shared tier
        *first* precisely to stay off this cache's LRU lock and therefore
        never write back into it on the read path.
        """
        client = shared_cache.client()
        if client is not None and client.prefer_shared and shared is not None:
            entry = self._shared_lookup(client, shared)
            if entry is not None:
                return entry
            return self.lookup(key)
        entry = self.lookup(key)
        if entry is not None:
            return entry
        if client is None or shared is None:
            return None
        entry = self._shared_lookup(client, shared)
        if entry is not None:
            self._install(key, entry)
        return entry

    def _shared_lookup(self, client, shared: tuple) -> "_Entry | None":
        key_bytes, version = shared
        payload = client.get("result", key_bytes, version)
        if payload is None:
            return None
        table, charges = pickle.loads(payload)
        return _Entry(table, charges, table.memory_bytes())

    def _install(self, key: tuple, entry: _Entry) -> None:
        """Adopt a shared-tier hit into the local LRU (no publish-back)."""
        if entry.nbytes > self.max_bytes:
            return
        with self._lock:
            if key in self._entries:
                return
            self._entries[key] = entry
            self._bytes += entry.nbytes
            while self._bytes > self.max_bytes and self._entries:
                _, evicted = self._entries.popitem(last=False)
                self._bytes -= evicted.nbytes
                self.evictions += 1

    def store(
        self,
        key: tuple,
        table: Table,
        ledger: CostLedger,
        shared: "tuple | None" = None,
    ) -> None:
        charges = ledger.snapshot()
        if shared is not None:
            self._publish(table, charges, shared)
        nbytes = table.memory_bytes()
        if nbytes > self.max_bytes:
            return
        with self._lock:
            if key in self._entries:  # racing duplicate store; keep the first
                return
            self._entries[key] = _Entry(table, charges, nbytes)
            self._bytes += nbytes
            while self._bytes > self.max_bytes and self._entries:
                _, evicted = self._entries.popitem(last=False)
                self._bytes -= evicted.nbytes
                self.evictions += 1

    @staticmethod
    def _publish(table: Table, charges: CostLedger, shared: tuple) -> None:
        client = shared_cache.client()
        if client is None:
            return
        if table.memory_bytes() > client.admission.max_bytes:
            return  # would be rejected anyway; skip the pickling cost
        key_bytes, version = shared
        payload = pickle.dumps((table, charges), protocol=pickle.HIGHEST_PROTOCOL)
        if client.admit("result", len(payload)):
            client.put("result", key_bytes, version, payload)

    @staticmethod
    def replay(entry: _Entry, ledger: CostLedger) -> Table:
        """Merge the recorded charges into a pristine ``ledger`` and return
        the cached table (shared, immutable by convention)."""
        ledger.merge(entry.charges)
        return entry.table

    # -- registry hooks ------------------------------------------------
    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._bytes = 0
            self.hits = 0
            self.misses = 0
            self.evictions = 0

    def stats(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "entries": len(self._entries),
            "bytes": self._bytes,
        }


# One process-wide cache: keys carry catalog/pool identities, so separate
# systems (and separate pool configurations) can never collide.
GLOBAL = ResultCache()


def eligible(ledger: CostLedger) -> bool:
    """May this execution go through the result cache at all?"""
    return ledger.faults is None and ledger.is_pristine


register_cache("engine.result_cache", GLOBAL.clear, GLOBAL.stats)
