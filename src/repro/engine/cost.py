"""Simulated cluster cost model.

DeepSea's decisions are driven by the *relative* costs of a Hive/Hadoop
deployment: every query pays per-MapReduce-job overhead; scans are split
into map tasks (at least one per file, one per HDFS block otherwise) that
run in waves over a bounded slot pool; and writing data — materializing a
view or a fragment — is far more expensive per byte than reading it
(``w_write >> w_read`` in §7.2).  :class:`ClusterSpec` encodes those
characteristics and converts byte counts into *simulated elapsed seconds*;
:class:`CostLedger` accumulates them per query.

Defaults are calibrated so that the paper's 32-node cluster magnitudes are
roughly reproduced: a scan-heavy BigBench query over a nominal 500 GB
instance costs a few hundred simulated seconds, and materializing a large
view costs tens of times more than a rewritten query that reuses it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field


@dataclass(frozen=True)
class ClusterSpec:
    """Static description of the simulated cluster.

    Attributes:
        block_bytes: HDFS block size; one map task per block.
        map_slots: Concurrent map-task slots (31 nodes x 6 threads).
        job_overhead_s: Fixed startup cost per MapReduce job.
        task_overhead_s: Fixed scheduling cost per map task (paid per wave).
        read_s_per_byte: Serial read cost; parallelized over slots.
        write_s_per_byte: Serial write cost (HDFS replication); much larger
            than the read cost, as the paper requires.
        shuffle_s_per_byte: Cost of shuffling a job's output between
            phases; parallelized over slots.
        file_write_overhead_s: Fixed cost of creating one output file —
            what makes writing many small fragments expensive.
    """

    # The simulated block is 64 MB (HDFS's classic default).  One task
    # wave costs block_bytes x read_s_per_byte ≈ 16 s, so: full scans pay
    # waves proportional to bytes; multi-block fragment reads pay at least
    # one full wave; and sub-block fragments (DeepSea's refined hot
    # slivers) finish in a fraction of a wave — the granularity effects
    # the paper's experiments measure.
    block_bytes: float = 64 * 1024 * 1024
    map_slots: int = 186
    job_overhead_s: float = 20.0
    task_overhead_s: float = 0.5
    # Scheduling/JVM-launch cost per map task, saturating at the slot
    # count.  This makes a query over more/larger fragments genuinely
    # slower even when its tasks fit in one wave — the paper's
    # "equi-depth issues 40-50% more map tasks and uses more resources"
    # effect (§10.2).
    task_dispatch_s: float = 0.4
    read_s_per_byte: float = 2.5e-7
    write_s_per_byte: float = 4.0e-7
    shuffle_s_per_byte: float = 5.0e-7
    file_write_overhead_s: float = 5.0
    # Base wait before a failed map task is re-dispatched; doubles per
    # attempt (the classic exponential-backoff retry of the MR scheduler).
    # Only ever charged under fault injection (repro.faults).
    retry_backoff_s: float = 2.0

    # ------------------------------------------------------------------
    def map_tasks(self, nbytes: float, nfiles: int = 1) -> int:
        """Map tasks needed to read ``nbytes`` spread over ``nfiles`` files.

        Every file costs at least one task; large files cost one task per
        block.  This is the mechanism behind the paper's observation that
        equi-depth partitions trigger 40-50% more map tasks (§10.2).
        """
        if nbytes <= 0 or nfiles <= 0:
            return 0
        per_file = nbytes / nfiles
        return nfiles * max(1, math.ceil(per_file / self.block_bytes))

    def read_elapsed(self, nbytes: float, nfiles: int = 1) -> float:
        """Elapsed seconds to scan ``nbytes`` over ``nfiles`` files."""
        tasks = self.map_tasks(nbytes, nfiles)
        if tasks == 0:
            return 0.0
        waves = math.ceil(tasks / self.map_slots)
        parallelism = min(tasks, self.map_slots)
        return (
            waves * self.task_overhead_s
            + parallelism * self.task_dispatch_s
            + nbytes * self.read_s_per_byte / parallelism
        )

    def write_elapsed(self, nbytes: float, nfiles: int = 1) -> float:
        """Elapsed seconds to write ``nbytes`` into ``nfiles`` output files."""
        if nbytes <= 0 and nfiles <= 0:
            return 0.0
        tasks = max(1, self.map_tasks(nbytes, max(nfiles, 1)))
        parallelism = min(tasks, self.map_slots)
        return (
            max(nfiles, 1) * self.file_write_overhead_s
            + nbytes * self.write_s_per_byte / parallelism
        )

    def shuffle_elapsed(self, nbytes: float) -> float:
        """Elapsed seconds to shuffle ``nbytes`` between job phases."""
        if nbytes <= 0:
            return 0.0
        return nbytes * self.shuffle_s_per_byte / self.map_slots


@dataclass
class CostLedger:
    """Accumulates simulated time and resource counters for one execution.

    When a :class:`~repro.faults.injector.FaultInjector` is attached via
    ``faults``, every scan additionally draws map-task failures and
    stragglers from it and charges their retry/speculation cost to
    ``fault_s`` — cost accounting only; results are never touched.  With
    ``faults`` left ``None`` (the default, and the only configuration the
    seed benchmarks use) the ledger behaves bit-identically to before.
    """

    cluster: ClusterSpec = field(default_factory=ClusterSpec)
    read_s: float = 0.0
    write_s: float = 0.0
    shuffle_s: float = 0.0
    overhead_s: float = 0.0
    jobs: int = 0
    map_tasks: int = 0
    bytes_read: float = 0.0
    bytes_written: float = 0.0
    files_written: int = 0
    # Fault accounting (repro.faults): extra simulated seconds paid to
    # retries, backoff waits, speculative copies, replica re-reads, and
    # recovery work, plus how many tasks each mechanism touched.
    fault_s: float = 0.0
    task_retries: int = 0
    speculative_tasks: int = 0
    fault_events: int = 0
    # Maintenance accounting (repro.storage.ingest): simulated seconds
    # spent keeping materialized fragments consistent with ingested
    # micro-batches, plus how the delta pass spent them — rows routed
    # through the interval index, rows actually appended to payloads,
    # and fragments patched in place vs rebuilt from base tables.  The
    # §7 selector weighs this upkeep against read benefit.
    maint_s: float = 0.0
    delta_rows_routed: int = 0
    delta_rows_applied: int = 0
    fragments_patched: int = 0
    fragments_rebuilt: int = 0
    faults: object | None = field(default=None, repr=False, compare=False)

    @property
    def total_seconds(self) -> float:
        return (
            self.read_s
            + self.write_s
            + self.shuffle_s
            + self.overhead_s
            + self.fault_s
            + self.maint_s
        )

    @property
    def is_pristine(self) -> bool:
        """True iff nothing has been charged yet.

        The subplan result cache (:mod:`repro.engine.result_cache`) may
        only replay a recorded execution into a pristine ledger: float
        addition starting from exact zero (``0.0 + x == x``) is the one
        case where a merged replay is bit-identical to re-running the
        charges one by one.
        """
        return (
            self.read_s == 0.0
            and self.write_s == 0.0
            and self.shuffle_s == 0.0
            and self.overhead_s == 0.0
            and self.jobs == 0
            and self.map_tasks == 0
            and self.bytes_read == 0.0
            and self.bytes_written == 0.0
            and self.files_written == 0
            and self.fault_s == 0.0
            and self.task_retries == 0
            and self.speculative_tasks == 0
            and self.fault_events == 0
            and self.maint_s == 0.0
            and self.delta_rows_routed == 0
            and self.delta_rows_applied == 0
            and self.fragments_patched == 0
            and self.fragments_rebuilt == 0
        )

    def snapshot(self) -> "CostLedger":
        """A detached copy of the accumulated charges.

        Drops the fault-injector reference deliberately: a snapshot is a
        record of past charges, never a live charging target.
        """
        copy = CostLedger(self.cluster)
        copy.merge(self)
        return copy

    # ------------------------------------------------------------------
    def charge_read(self, nbytes: float, nfiles: int = 1) -> None:
        self.read_s += self.cluster.read_elapsed(nbytes, nfiles)
        tasks = self.cluster.map_tasks(nbytes, nfiles)
        self.map_tasks += tasks
        self.bytes_read += nbytes
        if self.faults is not None and tasks > 0:
            self._inject_task_faults(nbytes, tasks)

    def _inject_task_faults(self, nbytes: float, tasks: int) -> None:
        """Draw map-task failures/stragglers for one scan and charge them.

        Each failed task re-executes serially after an exponential-backoff
        wait (`retry_backoff_s · 2^(attempt-1)`); each straggler spawns one
        speculative duplicate paying the task's full cost again.  Both are
        pure cost: the re-executed task reads the same block and produces
        the same rows, which is what keeps answers fault-invariant.
        """
        chains, stragglers = self.faults.map_task_faults(tasks)
        if not chains and not stragglers:
            return
        c = self.cluster
        per_task_s = c.task_overhead_s + c.task_dispatch_s + (nbytes / tasks) * c.read_s_per_byte
        extra = 0.0
        for attempts in chains:
            for attempt in range(1, attempts + 1):
                extra += per_task_s + c.retry_backoff_s * (2 ** (attempt - 1))
            self.task_retries += attempts
        extra += stragglers * per_task_s
        self.speculative_tasks += stragglers
        self.fault_s += extra
        self.fault_events += len(chains) + stragglers

    def charge_fault(self, seconds: float, events: int = 1) -> None:
        """Charge recovery/degradation time drawn by the fault layer."""
        self.fault_s += seconds
        self.fault_events += events

    def charge_write(self, nbytes: float, nfiles: int = 1) -> None:
        self.write_s += self.cluster.write_elapsed(nbytes, nfiles)
        self.bytes_written += nbytes
        self.files_written += max(nfiles, 1)

    def charge_shuffle(self, nbytes: float) -> None:
        self.shuffle_s += self.cluster.shuffle_elapsed(nbytes)

    def charge_maintenance(
        self,
        seconds: float,
        *,
        routed: int = 0,
        applied: int = 0,
        patched: int = 0,
        rebuilt: int = 0,
    ) -> None:
        """Charge delta-maintenance work (repro.storage.ingest).

        Kept out of read_s/write_s so benchmarks can isolate upkeep from
        serving cost; ``total_seconds`` still includes it.
        """
        self.maint_s += seconds
        self.delta_rows_routed += routed
        self.delta_rows_applied += applied
        self.fragments_patched += patched
        self.fragments_rebuilt += rebuilt

    def charge_jobs(self, njobs: int) -> None:
        self.jobs += njobs
        self.overhead_s += njobs * self.cluster.job_overhead_s

    def merge(self, other: "CostLedger") -> None:
        """Fold another ledger's charges into this one."""
        self.read_s += other.read_s
        self.write_s += other.write_s
        self.shuffle_s += other.shuffle_s
        self.overhead_s += other.overhead_s
        self.jobs += other.jobs
        self.map_tasks += other.map_tasks
        self.bytes_read += other.bytes_read
        self.bytes_written += other.bytes_written
        self.files_written += other.files_written
        self.fault_s += other.fault_s
        self.task_retries += other.task_retries
        self.speculative_tasks += other.speculative_tasks
        self.fault_events += other.fault_events
        self.maint_s += other.maint_s
        self.delta_rows_routed += other.delta_rows_routed
        self.delta_rows_applied += other.delta_rows_applied
        self.fragments_patched += other.fragments_patched
        self.fragments_rebuilt += other.fragments_rebuilt
